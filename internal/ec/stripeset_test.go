package ec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/fs/xfslite"
	"muxfs/internal/fstest"
	"muxfs/internal/simclock"
	"muxfs/internal/telemetry"
	"muxfs/internal/vfs"
)

func newNodeFS(t *testing.T, name string) vfs.FileSystem {
	t.Helper()
	dev := device.New(device.SSDProfile(name), simclock.New())
	fs, err := xfslite.New(name, dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// newSet builds a k+m stripe set over fresh xfslite nodes with a small
// shard so modest files span many stripes.
func newSet(t *testing.T, k, m int, shard int64) (*StripeSet, []vfs.FileSystem) {
	t.Helper()
	nodes := make([]vfs.FileSystem, k+m)
	for i := range nodes {
		nodes[i] = newNodeFS(t, fmt.Sprintf("node%d", i))
	}
	ss, err := New("t", nodes, Options{Parity: m, ShardSize: shard})
	if err != nil {
		t.Fatal(err)
	}
	return ss, nodes
}

// The composite tier must satisfy the full vfs contract — the same
// conformance battery every leaf file system passes, including sparse
// accounting, punch-hole semantics, and the randomized model check.
func TestStripeSetConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem {
		ss, _ := newSet(t, 3, 1, 4096)
		return ss
	})
}

func TestStripeSetConcurrency(t *testing.T) {
	fstest.RunConcurrency(t, func(t *testing.T) vfs.FileSystem {
		ss, _ := newSet(t, 3, 1, 4096)
		return ss
	})
}

// Geometry sweep: random I/O against a plain map-of-bytes model across
// several k/m combinations, exercising stripe math off the conformance
// suite's beaten path.
func TestStripeSetRandomAgainstModel(t *testing.T) {
	for _, tc := range []struct {
		k, m  int
		shard int64
	}{{1, 0, 512}, {2, 1, 512}, {4, 1, 1024}, {3, 2, 512}} {
		t.Run(fmt.Sprintf("%d+%d", tc.k, tc.m), func(t *testing.T) {
			ss, _ := newSet(t, tc.k, tc.m, tc.shard)
			f, err := ss.Create("/rand")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			rng := rand.New(rand.NewSource(42))
			const space = 96 << 10
			model := make([]byte, 0, space)
			for op := 0; op < 300; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // write
					off := int64(rng.Intn(space))
					n := rng.Intn(8192) + 1
					buf := make([]byte, n)
					rng.Read(buf)
					if _, err := f.WriteAt(buf, off); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					if need := int(off) + n; need > len(model) {
						model = append(model, make([]byte, need-len(model))...)
					}
					copy(model[off:], buf)
				case 5, 6, 7: // read
					if len(model) == 0 {
						continue
					}
					off := int64(rng.Intn(len(model)))
					n := rng.Intn(8192) + 1
					buf := make([]byte, n)
					rn, err := f.ReadAt(buf, off)
					want := len(model) - int(off)
					if want > n {
						want = n
					}
					if err != nil && err != io.EOF {
						t.Fatalf("op %d read: %v", op, err)
					}
					if rn != want || !bytes.Equal(buf[:rn], model[off:int(off)+want]) {
						t.Fatalf("op %d read mismatch at %d (n=%d want %d)", op, off, rn, want)
					}
				case 8: // truncate
					size := int64(rng.Intn(space))
					if err := f.Truncate(size); err != nil {
						t.Fatalf("op %d truncate: %v", op, err)
					}
					if int(size) <= len(model) {
						model = model[:size]
					} else {
						model = append(model, make([]byte, int(size)-len(model))...)
					}
				case 9: // punch
					if len(model) == 0 {
						continue
					}
					off := int64(rng.Intn(len(model)))
					n := int64(rng.Intn(16384) + 1)
					if err := f.PunchHole(off, n); err != nil {
						t.Fatalf("op %d punch: %v", op, err)
					}
					hi := off + n
					if hi > int64(len(model)) {
						hi = int64(len(model))
					}
					for x := off; x < hi; x++ {
						model[x] = 0
					}
				}
				// Size must track the model exactly.
				info, err := ss.Stat("/rand")
				if err != nil {
					t.Fatalf("op %d stat: %v", op, err)
				}
				if info.Size != int64(len(model)) {
					t.Fatalf("op %d: size %d, model %d", op, info.Size, len(model))
				}
			}
		})
	}
}

// writeFile writes pseudorandom bytes and returns them.
func writeFile(t *testing.T, ss *StripeSet, path string, size int, seed int64) []byte {
	t.Helper()
	f, err := ss.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return data
}

func readFull(t *testing.T, ss *StripeSet, path string, size int) []byte {
	t.Helper()
	f, err := ss.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

// Degraded reads: with any single node quarantined (data or parity), all
// bytes must still come back correct, served via parity reconstruction.
func TestDegradedReadEachNode(t *testing.T) {
	const k, m = 3, 1
	ss, _ := newSet(t, k, m, 1024)
	data := writeFile(t, ss, "/f", 50<<10, 1)
	for i := 0; i < k+m; i++ {
		if err := ss.Quarantine(i); err != nil {
			t.Fatal(err)
		}
		got := readFull(t, ss, "/f", len(data))
		if !bytes.Equal(got, data) {
			t.Fatalf("degraded read with node %d down: corrupt bytes", i)
		}
		if err := ss.Reinstate(i); err != nil {
			t.Fatal(err)
		}
	}
	if ss.Status().DegradedReads == 0 {
		t.Fatal("no degraded reads counted despite quarantined nodes")
	}
}

// Two parity nodes: any two nodes may be down simultaneously.
func TestDegradedReadDoubleFault(t *testing.T) {
	const k, m = 4, 2
	ss, _ := newSet(t, k, m, 1024)
	data := writeFile(t, ss, "/f", 64<<10, 2)
	for a := 0; a < k+m; a++ {
		for b := a + 1; b < k+m; b++ {
			ss.Quarantine(a)
			ss.Quarantine(b)
			got := readFull(t, ss, "/f", len(data))
			if !bytes.Equal(got, data) {
				t.Fatalf("read with nodes %d,%d down: corrupt bytes", a, b)
			}
			ss.Reinstate(a)
			ss.Reinstate(b)
		}
	}
}

// Writes during an outage mark the node stale; a rebuild restores it and
// a scrub certifies parity is consistent again.
func TestStaleWriteRebuildScrub(t *testing.T) {
	const k, m = 3, 1
	ss, _ := newSet(t, k, m, 1024)
	writeFile(t, ss, "/f", 40<<10, 3)

	// Node 1 misses a write burst.
	ss.Quarantine(1)
	data2 := writeFile(t, ss, "/g", 30<<10, 4)
	f, err := ss.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	overlay := bytes.Repeat([]byte{0xEE}, 8<<10)
	if _, err := f.WriteAt(overlay, 1000); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ss.Reinstate(1)
	if !ss.nodes[1].stale.Load() {
		t.Fatal("node 1 not marked stale after missing writes")
	}

	// Reads must not trust the stale node.
	got := readFull(t, ss, "/g", len(data2))
	if !bytes.Equal(got, data2) {
		t.Fatal("read served stale data")
	}

	st, err := ss.Rebuild(1)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if st.Files != 2 || st.Bytes == 0 {
		t.Fatalf("rebuild stats %+v", st)
	}
	if ss.nodes[1].stale.Load() {
		t.Fatal("node still stale after rebuild")
	}
	sc, err := ss.Scrub(false)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if sc.Mismatches != 0 {
		t.Fatalf("scrub found %d mismatches after rebuild", sc.Mismatches)
	}
	// And the rebuilt node now serves reads byte-correct on its own
	// authority: quarantine everyone else's parity twin to force use.
	got = readFull(t, ss, "/g", len(data2))
	if !bytes.Equal(got, data2) {
		t.Fatal("read wrong after rebuild")
	}
}

// ReplaceNode swaps in an empty file system; Rebuild must repopulate it
// including directory structure and attributes, preserving sparsity.
func TestReplaceNodeRebuild(t *testing.T) {
	const k, m = 3, 1
	ss, _ := newSet(t, k, m, 1024)
	if err := ss.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	data := writeFile(t, ss, "/d/f", 48<<10, 5)

	// Sparse file: bytes only at a far offset.
	sf, err := ss.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	tail := []byte("tail")
	if _, err := sf.WriteAt(tail, 1<<20); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	for victim := 0; victim < k+m; victim++ {
		repl := newNodeFS(t, fmt.Sprintf("repl%d", victim))
		if err := ss.ReplaceNode(victim, repl); err != nil {
			t.Fatal(err)
		}
		st, err := ss.Rebuild(victim)
		if err != nil {
			t.Fatalf("rebuild node %d: %v", victim, err)
		}
		if st.Files != 2 || st.Dirs != 1 {
			t.Fatalf("rebuild stats %+v", st)
		}
		sc, err := ss.Scrub(false)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Mismatches != 0 {
			t.Fatalf("scrub after replacing node %d: %d mismatches", victim, sc.Mismatches)
		}
		if got := readFull(t, ss, "/d/f", len(data)); !bytes.Equal(got, data) {
			t.Fatalf("data wrong after rebuilding node %d", victim)
		}
		buf := make([]byte, len(tail))
		f2, err := ss.Open("/sparse")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f2.ReadAt(buf, 1<<20); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		f2.Close()
		if !bytes.Equal(buf, tail) {
			t.Fatalf("sparse tail wrong after rebuilding node %d", victim)
		}
	}

	// Sparsity preserved: the sparse file's blocks must stay far below
	// its size.
	info, err := ss.Stat("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocks >= info.Size {
		t.Fatalf("sparse file densified by rebuild: blocks=%d size=%d", info.Blocks, info.Size)
	}
}

// The single-shard delta fast path and the general path must agree.
func TestDeltaParityMatchesGeneral(t *testing.T) {
	for _, m := range []int{1, 2} {
		ss, _ := newSet(t, 4, m, 2048)
		data := writeFile(t, ss, "/f", 64<<10, 7)
		f, err := ss.Open("/f")
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 50; i++ {
			off := int64(rng.Intn(len(data)))
			n := rng.Intn(1024) + 1 // small: frequently single-shard
			buf := make([]byte, n)
			rng.Read(buf)
			if _, err := f.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			copy(data[off:min(int(off)+n, len(data))], buf)
			if need := int(off) + n; need > len(data) {
				data = append(data, buf[len(buf)-(need-len(data)):]...)
			}
		}
		f.Close()
		// Parity must be perfectly consistent after the mix of paths.
		sc, err := ss.Scrub(false)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Mismatches != 0 {
			t.Fatalf("m=%d: %d parity mismatches after delta writes", m, sc.Mismatches)
		}
		if got := readFull(t, ss, "/f", len(data)); !bytes.Equal(got, data) {
			t.Fatalf("m=%d: data corrupt after delta writes", m)
		}
		// Degraded read cross-checks parity reflects the deltas.
		ss.Quarantine(0)
		if got := readFull(t, ss, "/f", len(data)); !bytes.Equal(got, data) {
			t.Fatalf("m=%d: degraded read wrong after delta writes", m)
		}
		ss.Reinstate(0)
	}
}

// Concurrent striped I/O across many files under -race.
func TestStripeSetParallelFiles(t *testing.T) {
	ss, _ := newSet(t, 4, 1, 1024)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/w%d", w)
			f, err := ss.Create(path)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			pat := bytes.Repeat([]byte{byte(w + 1)}, 3000)
			for i := 0; i < 20; i++ {
				off := int64(i) * 2999
				if _, err := f.WriteAt(pat, off); err != nil {
					errs <- fmt.Errorf("w%d write: %w", w, err)
					return
				}
				buf := make([]byte, len(pat))
				if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
					errs <- fmt.Errorf("w%d read: %w", w, err)
					return
				}
				if !bytes.Equal(buf, pat) {
					errs <- fmt.Errorf("w%d: cross-file corruption", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Size bookkeeping survives a cold restart of the stripe layer (fresh
// StripeSet over the same nodes — cache empty, sizes re-derived from
// node file sizes alone), including with a node missing.
func TestSizeRecoveryColdStart(t *testing.T) {
	const k, m = 3, 1
	nodes := make([]vfs.FileSystem, k+m)
	for i := range nodes {
		nodes[i] = newNodeFS(t, fmt.Sprintf("cold%d", i))
	}
	ss, err := New("t", nodes, Options{Parity: m, ShardSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Sizes chosen to land on every alignment class: empty, sub-shard,
	// exactly one shard, mid-stripe, full stripe, many stripes + tail.
	sizes := []int{0, 1, 517, 1024, 1500, 3072, 50000}
	for i, size := range sizes {
		writeFile(t, ss, fmt.Sprintf("/f%d", i), size, int64(i))
	}
	for down := -1; down < k+m; down++ {
		ss2, err := New("t", nodes, Options{Parity: m, ShardSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if down >= 0 {
			ss2.Quarantine(down)
		}
		for i, size := range sizes {
			info, err := ss2.Stat(fmt.Sprintf("/f%d", i))
			if err != nil {
				t.Fatalf("down=%d stat f%d: %v", down, i, err)
			}
			if info.Size != int64(size) {
				t.Fatalf("down=%d: f%d size %d, want %d", down, i, info.Size, size)
			}
		}
	}
}

// More nodes down than parity must fail loudly, not corrupt.
func TestTooManyFailures(t *testing.T) {
	ss, _ := newSet(t, 3, 1, 1024)
	writeFile(t, ss, "/f", 10<<10, 9)
	ss.Quarantine(0)
	ss.Quarantine(1)
	f, err := ss.Open("/f")
	if err == nil {
		_, err = f.ReadAt(make([]byte, 100), 0)
		f.Close()
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("read with 2 nodes down (m=1) returned %v, want ErrDegraded", err)
	}
}

// Telemetry wiring: per-node and set-wide counters must register and
// move.
func TestStripeTelemetry(t *testing.T) {
	nodes := make([]vfs.FileSystem, 3)
	for i := range nodes {
		nodes[i] = newNodeFS(t, fmt.Sprintf("tel%d", i))
	}
	reg := telemetry.NewRegistry(64)
	reg.SetEnabled(true)
	ss, err := New("telset", nodes, Options{Parity: 1, ShardSize: 1024, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	data := writeFile(t, ss, "/f", 8<<10, 11)
	ss.Quarantine(0)
	if got := readFull(t, ss, "/f", len(data)); !bytes.Equal(got, data) {
		t.Fatal("degraded read wrong")
	}
	st := ss.Status()
	if st.DegradedReads == 0 || st.ReconstructedBytes == 0 {
		t.Fatalf("degraded counters did not move: %+v", st)
	}
	var foundBytes, foundDegraded bool
	for _, n := range st.Nodes {
		if n.BytesWritten > 0 {
			foundBytes = true
		}
	}
	_ = foundDegraded
	if !foundBytes {
		t.Fatal("no per-node write bytes recorded")
	}
}
