package ec

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestGFAxioms(t *testing.T) {
	// Spot-check field axioms over every element pair is O(64k) — cheap.
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			ab := gfMul(byte(a), byte(b))
			ba := gfMul(byte(b), byte(a))
			if ab != ba {
				t.Fatalf("mul not commutative: %d*%d", a, b)
			}
			if b != 0 {
				if got := gfMul(gfDiv(byte(a), byte(b)), byte(b)); got != byte(a) {
					t.Fatalf("div/mul mismatch: a=%d b=%d got=%d", a, b, got)
				}
			}
		}
		if a != 0 {
			if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
				t.Fatalf("inv(%d) wrong", a)
			}
		}
	}
	// Distributivity on a sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("not distributive: %d %d %d", a, b, c)
		}
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 257)
	rng.Read(src)
	for _, c := range []byte{0, 1, 2, 0x8e, 255} {
		dst := make([]byte, len(src))
		mulSlice(c, src, dst)
		acc := make([]byte, len(src))
		rng.Read(acc)
		want := make([]byte, len(src))
		for i := range src {
			if dst[i] != gfMul(c, src[i]) {
				t.Fatalf("mulSlice c=%d i=%d", c, i)
			}
			want[i] = acc[i] ^ gfMul(c, src[i])
		}
		mulSliceXor(c, src, acc)
		if !bytes.Equal(acc, want) {
			t.Fatalf("mulSliceXor c=%d", c)
		}
	}
}

func TestEncodeReconstructAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, geo := range []struct{ k, m int }{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {3, 2}, {4, 2}, {6, 3}, {10, 4}} {
		c, err := NewCode(geo.k, geo.m)
		if err != nil {
			t.Fatal(err)
		}
		n := 1024 + rng.Intn(7) // odd lengths too
		data := make([][]byte, geo.k)
		for j := range data {
			data[j] = make([]byte, n)
			rng.Read(data[j])
		}
		parity := make([][]byte, geo.m)
		for p := range parity {
			parity[p] = make([]byte, n)
		}
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		total := geo.k + geo.m
		// Try every erasure pattern of size ≤ m (bitmask sweep is fine for
		// total ≤ 14).
		for mask := 0; mask < 1<<total; mask++ {
			erased := 0
			for i := 0; i < total; i++ {
				if mask>>i&1 == 1 {
					erased++
				}
			}
			if erased == 0 || erased > geo.m {
				continue
			}
			shards := make([][]byte, total)
			present := make([]bool, total)
			for i := 0; i < total; i++ {
				var orig []byte
				if i < geo.k {
					orig = data[i]
				} else {
					orig = parity[i-geo.k]
				}
				if mask>>i&1 == 1 {
					shards[i] = make([]byte, n) // to be recovered
				} else {
					shards[i] = append([]byte(nil), orig...)
					present[i] = true
				}
			}
			if err := c.Reconstruct(shards, present); err != nil {
				t.Fatalf("k=%d m=%d mask=%b: %v", geo.k, geo.m, mask, err)
			}
			for i := 0; i < total; i++ {
				var orig []byte
				if i < geo.k {
					orig = data[i]
				} else {
					orig = parity[i-geo.k]
				}
				if !bytes.Equal(shards[i], orig) {
					t.Fatalf("k=%d m=%d mask=%b: shard %d wrong after reconstruct", geo.k, geo.m, mask, i)
				}
			}
		}
	}
}

func TestReconstructTooFewLive(t *testing.T) {
	c, err := NewCode(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 5)
	present := make([]bool, 5)
	for i := range shards {
		shards[i] = make([]byte, 8)
		present[i] = i >= 2 // two missing, only one parity
	}
	if err := c.Reconstruct(shards, present); err != ErrTooFewLive {
		t.Fatalf("want ErrTooFewLive, got %v", err)
	}
}

func TestNewCodeValidation(t *testing.T) {
	if _, err := NewCode(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewCode(200, 100); err == nil {
		t.Fatal("k+m>256 accepted")
	}
	if _, err := NewCode(4, 0); err != nil {
		t.Fatalf("m=0 rejected: %v", err)
	}
}

func BenchmarkEncodeXOR_4plus1_64K(b *testing.B) {
	benchEncode(b, 4, 1)
}

func BenchmarkEncodeRS_4plus2_64K(b *testing.B) {
	benchEncode(b, 4, 2)
}

func benchEncode(b *testing.B, k, m int) {
	c, err := NewCode(k, m)
	if err != nil {
		b.Fatal(err)
	}
	const n = 64 << 10
	data := make([][]byte, k)
	rng := rand.New(rand.NewSource(4))
	for j := range data {
		data[j] = make([]byte, n)
		rng.Read(data[j])
	}
	parity := make([][]byte, m)
	for p := range parity {
		parity[p] = make([]byte, n)
	}
	b.SetBytes(int64(k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}
