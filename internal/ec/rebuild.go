package ec

import (
	"errors"
	"fmt"
	"sort"

	"muxfs/internal/vfs"
)

// Quarantine manually fences node i: it stops receiving operations until
// Reinstate. Writes issued while fenced mark it stale, so a Rebuild is
// usually needed afterwards.
func (ss *StripeSet) Quarantine(i int) error {
	if i < 0 || i >= len(ss.nodes) {
		return ErrNodeIndex
	}
	n := ss.nodes[i]
	n.bmu.Lock()
	if n.state != nodeQuarantined {
		n.quarantines.Add(1)
	}
	n.state = nodeQuarantined
	n.manual = true
	n.bmu.Unlock()
	return nil
}

// Reinstate lifts a manual quarantine and resets the breaker. It does
// not clear staleness — use Rebuild to restore missed writes first.
func (ss *StripeSet) Reinstate(i int) error {
	if i < 0 || i >= len(ss.nodes) {
		return ErrNodeIndex
	}
	n := ss.nodes[i]
	n.bmu.Lock()
	n.state = nodeHealthy
	n.manual = false
	n.consec = 0
	n.bmu.Unlock()
	return nil
}

// ReplaceNode swaps in a fresh file system for node i (a replacement
// disk/server). The node is marked stale until Rebuild repopulates it;
// cached file handles reopen lazily via the generation bump.
func (ss *StripeSet) ReplaceNode(i int, fs vfs.FileSystem) error {
	if i < 0 || i >= len(ss.nodes) {
		return ErrNodeIndex
	}
	n := ss.nodes[i]
	n.fsMu.Lock()
	n.fs = fs
	n.fsMu.Unlock()
	n.gen.Add(1)
	n.stale.Store(true)
	n.bmu.Lock()
	n.state = nodeHealthy
	n.manual = false
	n.consec = 0
	n.bmu.Unlock()
	return nil
}

// RebuildStats summarizes one node rebuild.
type RebuildStats struct {
	Files int
	Dirs  int
	Bytes int64 // bytes written to the rebuilt node
}

// Rebuild repopulates node i from the surviving nodes: directories are
// re-created, every file's shards are reconstructed (data node) or
// re-encoded (parity node) batch-wise, and sparsity is preserved by
// skipping all-zero batches. On success the node is fresh again: stale
// cleared, breaker reset.
func (ss *StripeSet) Rebuild(i int) (RebuildStats, error) {
	var st RebuildStats
	if i < 0 || i >= len(ss.nodes) {
		return st, ErrNodeIndex
	}
	// The node being rebuilt must not serve reads or act as authority
	// while its content is in flux.
	ss.nodes[i].stale.Store(true)

	dirs, files, err := ss.walk("/")
	if err != nil {
		return st, err
	}
	for _, d := range dirs {
		err := ss.nodeCall(i, func(fs vfs.FileSystem) error {
			err := fs.Mkdir(d)
			if errors.Is(err, vfs.ErrExist) {
				return nil
			}
			return err
		})
		if err != nil {
			return st, fmt.Errorf("rebuild mkdir %s: %w", d, err)
		}
		st.Dirs++
	}
	for _, p := range files {
		n, err := ss.rebuildFile(i, p)
		if err != nil {
			return st, fmt.Errorf("rebuild %s: %w", p, err)
		}
		st.Files++
		st.Bytes += n
	}
	ss.nodes[i].stale.Store(false)
	n := ss.nodes[i]
	n.bmu.Lock()
	n.state = nodeHealthy
	n.manual = false
	n.consec = 0
	n.bmu.Unlock()
	ss.rebuilds.Add(1)
	ss.rebuildBytes.Add(st.Bytes)
	if ss.telRebuild != nil && ss.tel.Enabled() {
		ss.telRebuild.Add(st.Bytes)
	}
	return st, nil
}

// walk lists the namespace (from the surviving authority) depth-first:
// parent directories always precede their children.
func (ss *StripeSet) walk(root string) (dirs, files []string, err error) {
	ents, err := ss.ReadDir(root)
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].Name < ents[b].Name })
	for _, e := range ents {
		p := root + e.Name
		if root != "/" {
			p = root + "/" + e.Name
		}
		if e.IsDir {
			dirs = append(dirs, p)
			subDirs, subFiles, err := ss.walk(p)
			if err != nil {
				return nil, nil, err
			}
			dirs = append(dirs, subDirs...)
			files = append(files, subFiles...)
		} else {
			files = append(files, p)
		}
	}
	return dirs, files, nil
}

// rebuildFile reconstructs one file's shards onto node i and returns the
// bytes written.
func (ss *StripeSet) rebuildFile(i int, path string) (int64, error) {
	fm := ss.getMeta(path)
	fm.mu.Lock()
	defer fm.mu.Unlock()
	fm.loaded = false // node i is untrusted; re-derive from survivors
	if err := ss.ensureLoadedLocked(path, fm); err != nil {
		return 0, err
	}
	l := fm.size
	g := ss.geom

	// Reset the target file to empty so skipped zero batches stay holes.
	err := ss.nodeCall(i, func(fs vfs.FileSystem) error {
		h, err := fs.Open(path)
		if errors.Is(err, vfs.ErrNotExist) {
			h, err = fs.Create(path)
		}
		if err != nil {
			return err
		}
		defer h.Close()
		return h.Truncate(0)
	})
	if err != nil {
		return 0, err
	}

	targetLen := g.nodeLen(i, l)
	if i >= g.k {
		targetLen = g.parityLen(l)
	}
	scratch := ss.newFile(path)
	defer scratch.Close()

	var written int64
	span := g.span()
	batchStripes := max64(1, batchBytes/span)
	lastStripe := int64(-1)
	if l > 0 {
		lastStripe = (l - 1) / span
	}
	for bs0 := int64(0); bs0 <= lastStripe; bs0 += batchStripes {
		bs1 := min64(bs0+batchStripes-1, lastStripe)
		nStripes := bs1 - bs0 + 1
		dataBufs := make([][]byte, g.k)
		for j := range dataBufs {
			dataBufs[j] = make([]byte, nStripes*g.s)
		}
		if err := scratch.readShards(bs0, bs1, l, dataBufs, i); err != nil {
			return written, err
		}
		var out []byte
		if i < g.k {
			out = dataBufs[i]
		} else {
			// Parity node: re-encode from the data shards.
			out = make([]byte, nStripes*g.s)
			shards := make([][]byte, g.k)
			pshards := make([][]byte, g.m)
			spare := make([][]byte, 0, g.m)
			for pi := 0; pi < g.m; pi++ {
				if g.k+pi == i {
					continue
				}
				spare = append(spare, make([]byte, g.s))
			}
			for r := int64(0); r < nStripes; r++ {
				for j := 0; j < g.k; j++ {
					shards[j] = dataBufs[j][r*g.s : (r+1)*g.s]
				}
				si := 0
				for pi := 0; pi < g.m; pi++ {
					if g.k+pi == i {
						pshards[pi] = out[r*g.s : (r+1)*g.s]
					} else {
						pshards[pi] = spare[si]
						si++
					}
				}
				if err := ss.code.Encode(shards, pshards); err != nil {
					return written, err
				}
			}
		}
		lo := bs0 * g.s
		hi := min64(lo+nStripes*g.s, targetLen)
		if hi <= lo {
			continue
		}
		chunk := out[:hi-lo]
		if isZero(chunk) {
			continue // leave the hole
		}
		if err := scratch.nodeWrite(i, chunk, lo); err != nil {
			return written, err
		}
		written += hi - lo
	}

	// Exact final length: data nodes get shard coverage, parity nodes the
	// logical size (payload + tail hole) so size recovery holds.
	finalLen := g.nodeLen(i, l)
	if i >= g.k {
		finalLen = l
	}
	err = ss.nodeCall(i, func(fs vfs.FileSystem) error {
		return fs.Truncate(path, finalLen)
	})
	if err != nil {
		return written, err
	}

	// Copy logical attributes from the survivors.
	info, err := ss.statSurvivors(path, i)
	if err == nil {
		mode := info.Mode
		mt := info.ModTime
		_ = ss.nodeCall(i, func(fs vfs.FileSystem) error {
			return fs.SetAttr(path, vfs.SetAttr{Mode: &mode, ModTime: &mt})
		})
	}
	return written, nil
}

// statSurvivors stats the path skipping node i.
func (ss *StripeSet) statSurvivors(path string, skip int) (vfs.FileInfo, error) {
	var out vfs.FileInfo
	var got bool
	for j := range ss.nodes {
		if j == skip || ss.nodes[j].stale.Load() {
			continue
		}
		err := ss.nodeCall(j, func(fs vfs.FileSystem) error {
			info, err := fs.Stat(path)
			if err == nil {
				out, got = info, true
			}
			return err
		})
		if err == nil && got {
			return out, nil
		}
	}
	return out, ErrDegraded
}

func isZero(b []byte) bool {
	for len(b) >= 8 {
		if b[0]|b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] != 0 {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// ScrubStats summarizes a parity verification pass.
type ScrubStats struct {
	Files      int
	Stripes    int64
	Mismatches int64
	Repaired   int64
}

// Scrub re-reads every file's data shards, recomputes parity, and
// compares it with the stored parity. With repair set, mismatched parity
// ranges are rewritten. A clean scrub (Mismatches == 0) certifies the
// set is fully redundant again after a rebuild.
func (ss *StripeSet) Scrub(repair bool) (ScrubStats, error) {
	var st ScrubStats
	if ss.geom.m == 0 {
		return st, nil
	}
	_, files, err := ss.walk("/")
	if err != nil {
		return st, err
	}
	for _, p := range files {
		if err := ss.scrubFile(p, repair, &st); err != nil {
			return st, fmt.Errorf("scrub %s: %w", p, err)
		}
		st.Files++
	}
	return st, nil
}

func (ss *StripeSet) scrubFile(path string, repair bool, st *ScrubStats) error {
	fm := ss.getMeta(path)
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if err := ss.ensureLoadedLocked(path, fm); err != nil {
		return err
	}
	l := fm.size
	if l == 0 {
		return nil
	}
	g := ss.geom
	scratch := ss.newFile(path)
	defer scratch.Close()
	span := g.span()
	batchStripes := max64(1, batchBytes/span)
	lastStripe := (l - 1) / span
	for bs0 := int64(0); bs0 <= lastStripe; bs0 += batchStripes {
		bs1 := min64(bs0+batchStripes-1, lastStripe)
		nStripes := bs1 - bs0 + 1
		dataBufs := make([][]byte, g.k)
		for j := range dataBufs {
			dataBufs[j] = make([]byte, nStripes*g.s)
		}
		if err := scratch.readShards(bs0, bs1, l, dataBufs, -1); err != nil {
			return err
		}
		want := make([][]byte, g.m)
		pshards := make([][]byte, g.m)
		shards := make([][]byte, g.k)
		for pi := range want {
			want[pi] = make([]byte, nStripes*g.s)
		}
		for r := int64(0); r < nStripes; r++ {
			for j := 0; j < g.k; j++ {
				shards[j] = dataBufs[j][r*g.s : (r+1)*g.s]
			}
			for pi := 0; pi < g.m; pi++ {
				pshards[pi] = want[pi][r*g.s : (r+1)*g.s]
			}
			if err := ss.code.Encode(shards, pshards); err != nil {
				return err
			}
		}
		st.Stripes += nStripes
		lo := bs0 * g.s
		hi := min64(lo+nStripes*g.s, g.parityLen(l))
		if hi <= lo {
			continue
		}
		for pi := 0; pi < g.m; pi++ {
			got := make([]byte, hi-lo)
			if err := scratch.nodeRead(g.k+pi, got, lo); err != nil {
				return err
			}
			// Count mismatching stripes, not bytes, so the number is
			// comparable across shard sizes.
			for r := int64(0); r < nStripes; r++ {
				slo := r * g.s
				shi := min64(slo+g.s, hi-lo)
				if slo >= shi {
					break
				}
				if !bytesEqual(got[slo:shi], want[pi][slo:shi]) {
					st.Mismatches++
					if repair {
						if err := scratch.nodeWrite(g.k+pi, want[pi][slo:shi], lo+slo); err != nil {
							return err
						}
						st.Repaired++
					}
				}
			}
		}
	}
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NodeStatus is one node's health snapshot.
type NodeStatus struct {
	Index        int    `json:"index"`
	Role         string `json:"role"` // "data" | "parity"
	Name         string `json:"name"`
	State        string `json:"state"` // healthy | quarantined | probing
	Stale        bool   `json:"stale"`
	Ops          int64  `json:"ops"`
	Faults       int64  `json:"faults"`
	BytesRead    int64  `json:"bytes_read"`
	BytesWritten int64  `json:"bytes_written"`
	Quarantines  int64  `json:"quarantines"`
}

// SetStatus is the whole stripe set's snapshot.
type SetStatus struct {
	Name               string       `json:"name"`
	DataNodes          int          `json:"data_nodes"`
	ParityNodes        int          `json:"parity_nodes"`
	ShardSize          int64        `json:"shard_size"`
	DegradedReads      int64        `json:"degraded_reads"`
	ReconstructedBytes int64        `json:"reconstructed_bytes"`
	RebuildBytes       int64        `json:"rebuild_bytes"`
	Rebuilds           int64        `json:"rebuilds"`
	Nodes              []NodeStatus `json:"nodes"`
}

// Status reports the live health of every node plus set-wide counters.
func (ss *StripeSet) Status() SetStatus {
	out := SetStatus{
		Name:               ss.Name(),
		DataNodes:          ss.geom.k,
		ParityNodes:        ss.geom.m,
		ShardSize:          ss.geom.s,
		DegradedReads:      ss.degradedReads.Load(),
		ReconstructedBytes: ss.reconstructedBytes.Load(),
		RebuildBytes:       ss.rebuildBytes.Load(),
		Rebuilds:           ss.rebuilds.Load(),
	}
	for i, n := range ss.nodes {
		out.Nodes = append(out.Nodes, NodeStatus{
			Index:        i,
			Role:         ss.roleOf(i),
			Name:         n.fileSystem().Name(),
			State:        n.breakerState().String(),
			Stale:        n.stale.Load(),
			Ops:          n.ops.Load(),
			Faults:       n.faults.Load(),
			BytesRead:    n.bytesR.Load(),
			BytesWritten: n.bytesW.Load(),
			Quarantines:  n.quarantines.Load(),
		})
	}
	return out
}
