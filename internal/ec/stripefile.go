package ec

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"muxfs/internal/vfs"
)

// stripeFile is an open handle on a striped file: per-node handles are
// opened lazily and cached; a generation check reopens them after a node
// is replaced.
type stripeFile struct {
	ss     *StripeSet
	path   string
	closed atomic.Bool
	hmu    []sync.Mutex // per-node handle lock
	nf     []vfs.File
	ngen   []int64
}

var _ vfs.File = (*stripeFile)(nil)

func (ss *StripeSet) newFile(path string) *stripeFile {
	n := len(ss.nodes)
	return &stripeFile{
		ss:   ss,
		path: path,
		hmu:  make([]sync.Mutex, n),
		nf:   make([]vfs.File, n),
		ngen: make([]int64, n),
	}
}

// Path returns the path the handle was opened with.
func (f *stripeFile) Path() string { return f.path }

// handle returns the cached per-node file handle, opening (and when
// create is set, creating) it as needed. Caller is inside a nodeCall.
func (f *stripeFile) handle(i int, fs vfs.FileSystem, create bool) (vfs.File, error) {
	f.hmu[i].Lock()
	defer f.hmu[i].Unlock()
	gen := f.ss.nodes[i].gen.Load()
	if f.nf[i] != nil && f.ngen[i] == gen {
		return f.nf[i], nil
	}
	if f.nf[i] != nil {
		f.nf[i].Close()
		f.nf[i] = nil
	}
	h, err := fs.Open(f.path)
	if errors.Is(err, vfs.ErrNotExist) && create {
		h, err = fs.Create(f.path)
		if errors.Is(err, vfs.ErrExist) {
			h, err = fs.Open(f.path)
		}
	}
	if err != nil {
		return nil, err
	}
	f.nf[i] = h
	f.ngen[i] = gen
	return h, nil
}

// invalidate drops a cached handle (after the server restarted and
// forgot it).
func (f *stripeFile) invalidate(i int) {
	f.hmu[i].Lock()
	f.nf[i] = nil
	f.hmu[i].Unlock()
}

// nodeRead fills buf from node i's file at node offset off, zero-filling
// past EOF and for missing files, so callers always get the zero-padded
// shard view the parity math is defined over. Returns nil for every
// healthy outcome; errors are node faults.
func (f *stripeFile) nodeRead(i int, buf []byte, off int64) error {
	return f.ss.nodeCall(i, func(fs vfs.FileSystem) error {
		tel := f.ss.tel != nil && f.ss.tel.Enabled()
		var start time.Time
		if tel {
			start = time.Now()
		}
		err := f.nodeReadOnce(i, fs, buf, off, true)
		n := f.ss.nodes[i]
		if err == nil {
			n.bytesR.Add(int64(len(buf)))
			if tel {
				n.telLatR.RecordSince(start)
				n.telBytesR.Add(int64(len(buf)))
			}
		}
		return err
	})
}

func (f *stripeFile) nodeReadOnce(i int, fs vfs.FileSystem, buf []byte, off int64, retry bool) error {
	h, err := f.handle(i, fs, false)
	if errors.Is(err, vfs.ErrNotExist) {
		zero(buf)
		return nil
	}
	if err != nil {
		return err
	}
	n, err := h.ReadAt(buf, off)
	if errors.Is(err, vfs.ErrClosed) && retry {
		// The node restarted and lost the handle table; reopen once.
		f.invalidate(i)
		return f.nodeReadOnce(i, fs, buf, off, false)
	}
	if err == nil || err == io.EOF {
		zero(buf[n:])
		return nil
	}
	return err
}

// nodeWrite writes buf to node i's file at node offset off, creating the
// node file if it does not exist yet.
func (f *stripeFile) nodeWrite(i int, buf []byte, off int64) error {
	return f.ss.nodeCall(i, func(fs vfs.FileSystem) error {
		tel := f.ss.tel != nil && f.ss.tel.Enabled()
		var start time.Time
		if tel {
			start = time.Now()
		}
		err := f.nodeWriteOnce(i, fs, buf, off, true)
		n := f.ss.nodes[i]
		if err == nil {
			n.bytesW.Add(int64(len(buf)))
			if tel {
				n.telLatW.RecordSince(start)
				n.telBytesW.Add(int64(len(buf)))
			}
		}
		return err
	})
}

func (f *stripeFile) nodeWriteOnce(i int, fs vfs.FileSystem, buf []byte, off int64, retry bool) error {
	h, err := f.handle(i, fs, true)
	if err != nil {
		return err
	}
	_, err = h.WriteAt(buf, off)
	if errors.Is(err, vfs.ErrClosed) && retry {
		f.invalidate(i)
		return f.nodeWriteOnce(i, fs, buf, off, false)
	}
	return err
}

// nodePunch punches [off, off+n) on node i's file; missing files are
// already holes.
func (f *stripeFile) nodePunch(i int, off, n int64) error {
	return f.ss.nodeCall(i, func(fs vfs.FileSystem) error {
		h, err := f.handle(i, fs, false)
		if errors.Is(err, vfs.ErrNotExist) {
			return nil
		}
		if err != nil {
			return err
		}
		err = h.PunchHole(off, n)
		if errors.Is(err, vfs.ErrClosed) {
			f.invalidate(i)
			if h, err = f.handle(i, fs, false); err == nil {
				err = h.PunchHole(off, n)
			}
		}
		return err
	})
}

func zero(b []byte) {
	clear(b)
}

// usable reports whether node i can serve reads right now.
func (ss *StripeSet) usable(i int) bool {
	n := ss.nodes[i]
	return !n.stale.Load() && n.admit(time.Now())
}

// readShards reads stripes [bs0, bs1] of the file into per-data-node
// buffers (each (bs1-bs0+1)*s bytes, caller-allocated and zeroed),
// reconstructing from parity when data nodes are stale, quarantined, or
// fail. This is the shared engine under reads, read-modify-write
// prefills, rebuilds, and scrubs. L is the logical size whose clamps
// apply. excl marks nodes to treat as absent (the rebuild target).
func (f *stripeFile) readShards(bs0, bs1, l int64, dataBufs [][]byte, excl int) error {
	g := f.ss.geom
	nStripes := bs1 - bs0 + 1
	lo := bs0 * g.s
	failed := make([]bool, g.k+g.m)
	var wg sync.WaitGroup
	for j := 0; j < g.k; j++ {
		if j == excl || f.ss.nodes[j].stale.Load() {
			failed[j] = true
			continue
		}
		hi := min64(lo+nStripes*g.s, g.nodeLen(j, l))
		if hi <= lo {
			continue // nothing stored: zeros
		}
		wg.Add(1)
		go func(j int, span int64) {
			defer wg.Done()
			if err := f.nodeRead(j, dataBufs[j][:span], lo); err != nil {
				failed[j] = true
			}
		}(j, hi-lo)
	}
	wg.Wait()
	anyData := false
	for j := 0; j < g.k; j++ {
		if failed[j] {
			anyData = true
		}
	}
	if !anyData {
		return nil
	}
	if g.m == 0 {
		return fmt.Errorf("%w: data node lost with no parity", ErrDegraded)
	}
	// Degraded: pull parity shards and reconstruct the whole batch.
	parityBufs := make([][]byte, g.m)
	for p := 0; p < g.m; p++ {
		parityBufs[p] = make([]byte, nStripes*g.s)
		i := g.k + p
		if i == excl || f.ss.nodes[i].stale.Load() {
			failed[i] = true
			continue
		}
		hi := min64(lo+nStripes*g.s, g.parityLen(l))
		if hi <= lo {
			continue
		}
		wg.Add(1)
		go func(p int, i int, span int64) {
			defer wg.Done()
			if err := f.nodeRead(i, parityBufs[p][:span], lo); err != nil {
				failed[i] = true
			}
		}(p, i, hi-lo)
	}
	wg.Wait()
	if g.k+g.m-countTrue(failed) < g.k {
		return ErrDegraded
	}
	shards := make([][]byte, g.k+g.m)
	present := make([]bool, g.k+g.m)
	for r := int64(0); r < nStripes; r++ {
		for j := 0; j < g.k; j++ {
			shards[j] = dataBufs[j][r*g.s : (r+1)*g.s]
			present[j] = !failed[j]
		}
		for p := 0; p < g.m; p++ {
			shards[g.k+p] = parityBufs[p][r*g.s : (r+1)*g.s]
			present[g.k+p] = !failed[g.k+p]
		}
		if err := f.ss.code.Reconstruct(shards, present); err != nil {
			return err
		}
	}
	var recon int64
	for j := 0; j < g.k; j++ {
		if failed[j] {
			if n := min64(lo+nStripes*g.s, g.nodeLen(j, l)) - lo; n > 0 {
				recon += n
			}
		}
	}
	f.ss.degradedReads.Add(1)
	f.ss.reconstructedBytes.Add(recon)
	if f.ss.telDegraded != nil && f.ss.tel.Enabled() {
		f.ss.telDegraded.Add(1)
		f.ss.telRecon.Add(recon)
	}
	return nil
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// ensureLoaded populates the cached logical size if needed.
func (ss *StripeSet) ensureLoaded(path string, fm *fileMeta) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	return ss.ensureLoadedLocked(path, fm)
}

func (ss *StripeSet) ensureLoadedLocked(path string, fm *fileMeta) error {
	if fm.loaded {
		return nil
	}
	infos := make([]vfs.FileInfo, len(ss.nodes))
	oks := make([]bool, len(ss.nodes))
	errs := ss.fanAll(func(i int, fs vfs.FileSystem) error {
		info, err := fs.Stat(path)
		if err == nil {
			infos[i], oks[i] = info, true
		}
		return err
	})
	if err := ss.resolveNS(errs, false); err != nil {
		return err
	}
	fm.size = ss.sizeFromStats(infos, oks)
	fm.loaded = true
	return nil
}

// ReadAt reads logical bytes, reconstructing from parity when nodes are
// down. Short reads at EOF return io.EOF per the vfs contract.
func (f *stripeFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(p) == 0 {
		return 0, nil
	}
	fm := f.ss.getMeta(f.path)
	fm.mu.RLock()
	if !fm.loaded {
		fm.mu.RUnlock()
		if err := f.ss.ensureLoaded(f.path, fm); err != nil {
			return 0, err
		}
		fm.mu.RLock()
	}
	defer fm.mu.RUnlock()
	l := fm.size
	if off >= l {
		return 0, io.EOF
	}
	n := int(min64(int64(len(p)), l-off))
	if err := f.readRangeLocked(p[:n], off, l); err != nil {
		return 0, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// readRangeLocked fills dst with logical bytes [off, off+len(dst)),
// batching stripes to bound memory. Caller holds fm.mu (read or write).
func (f *stripeFile) readRangeLocked(dst []byte, off, l int64) error {
	g := f.ss.geom
	span := g.span()
	end := off + int64(len(dst))
	batchStripes := max64(1, batchBytes/span)
	for bs0 := off / span; bs0*span < end; bs0 += batchStripes {
		bs1 := min64(bs0+batchStripes-1, (end-1)/span)
		if err := f.readBatchInto(dst, off, end, bs0, bs1, l); err != nil {
			return err
		}
	}
	return nil
}

func (f *stripeFile) readBatchInto(dst []byte, off, end, bs0, bs1, l int64) error {
	g := f.ss.geom
	nStripes := bs1 - bs0 + 1
	dataBufs := make([][]byte, g.k)
	for j := range dataBufs {
		dataBufs[j] = make([]byte, nStripes*g.s)
	}
	if err := f.readShards(bs0, bs1, l, dataBufs, -1); err != nil {
		return err
	}
	gatherBatch(g, dst, off, end, bs0, bs1, dataBufs)
	return nil
}

// gatherBatch copies shard-layout buffers into the logical buffer.
func gatherBatch(g geom, dst []byte, off, end, bs0, bs1 int64, dataBufs [][]byte) {
	span := g.span()
	for st := bs0; st <= bs1; st++ {
		for j := 0; j < g.k; j++ {
			shardLo := st*span + int64(j)*g.s
			lo := max64(off, shardLo)
			hi := min64(end, shardLo+g.s)
			if lo >= hi {
				continue
			}
			src := dataBufs[j][(st-bs0)*g.s+lo-shardLo:]
			copy(dst[lo-off:hi-off], src[:hi-lo])
		}
	}
}

// scatterBatch copies logical bytes into shard-layout buffers — the
// inverse of gatherBatch.
func scatterBatch(g geom, src []byte, off, end, bs0, bs1 int64, dataBufs [][]byte) {
	span := g.span()
	for st := bs0; st <= bs1; st++ {
		for j := 0; j < g.k; j++ {
			shardLo := st*span + int64(j)*g.s
			lo := max64(off, shardLo)
			hi := min64(end, shardLo+g.s)
			if lo >= hi {
				continue
			}
			dstb := dataBufs[j][(st-bs0)*g.s+lo-shardLo:]
			copy(dstb[:hi-lo], src[lo-off:hi-off])
		}
	}
}

// WriteAt writes logical bytes: full-stripe batches skip the pre-read,
// partial stripes read-modify-write, and a write confined to a single
// shard takes the delta-parity fast path (1+m reads, 1+m writes,
// independent of k).
func (f *stripeFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(p) == 0 {
		return 0, nil
	}
	fm := f.ss.getMeta(f.path)
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if err := f.ss.ensureLoadedLocked(f.path, fm); err != nil {
		return 0, err
	}
	l := fm.size
	end := off + int64(len(p))
	newL := max64(l, end)

	g := f.ss.geom
	if st0, sh0, o0 := g.locate(off); g.m > 0 && int64(len(p)) <= g.s-o0 {
		// Single-shard fast path.
		if ok, err := f.writeDelta(st0, sh0, o0, p, l); err != nil {
			return 0, err
		} else if ok {
			if err := f.finishWrite(fm, l, newL); err != nil {
				return 0, err
			}
			return len(p), nil
		}
	}

	span := g.span()
	batchStripes := max64(1, batchBytes/span)
	for bs0 := off / span; bs0*span < end; bs0 += batchStripes {
		bs1 := min64(bs0+batchStripes-1, (end-1)/span)
		if err := f.writeBatch(p, off, end, bs0, bs1, l, newL); err != nil {
			return 0, err
		}
	}
	if err := f.finishWrite(fm, l, newL); err != nil {
		return 0, err
	}
	return len(p), nil
}

// writeDelta is the single-shard fast path: read the old bytes and old
// parity for just the written range, then update parity by the delta
// (newP = oldP + coef·(new − old) — XOR when m = 1). Returns ok=false to
// fall back to the general path when a needed node can't serve the
// pre-reads.
func (f *stripeFile) writeDelta(st int64, j int, o0 int64, p []byte, l int64) (bool, error) {
	g := f.ss.geom
	if !f.ss.usable(j) {
		return false, nil
	}
	for pi := 0; pi < g.m; pi++ {
		if !f.ss.usable(g.k + pi) {
			return false, nil
		}
	}
	nodeOff := st*g.s + o0
	old := make([]byte, len(p))
	// Clamp the pre-reads: bytes beyond the stored length are zeros.
	if stored := g.nodeLen(j, l); stored > nodeOff {
		n := min64(stored-nodeOff, int64(len(p)))
		if err := f.nodeRead(j, old[:n], nodeOff); err != nil {
			return false, nil
		}
	}
	oldP := make([][]byte, g.m)
	pLen := g.parityLen(l)
	var wg sync.WaitGroup
	pfail := atomic.Bool{}
	for pi := 0; pi < g.m; pi++ {
		oldP[pi] = make([]byte, len(p))
		if pLen <= nodeOff {
			continue
		}
		n := min64(pLen-nodeOff, int64(len(p)))
		wg.Add(1)
		go func(pi int, n int64) {
			defer wg.Done()
			if err := f.nodeRead(g.k+pi, oldP[pi][:n], nodeOff); err != nil {
				pfail.Store(true)
			}
		}(pi, n)
	}
	wg.Wait()
	if pfail.Load() {
		return false, nil
	}
	// delta = old ⊕ new, reusing old's storage.
	xorSlice(p, old)
	for pi := 0; pi < g.m; pi++ {
		coef := byte(1)
		if g.m > 1 {
			coef = f.ss.code.parity[pi][j]
		}
		mulSliceXor(coef, old, oldP[pi])
	}
	// Dispatch the 1+m writes in parallel.
	errs := make([]error, 1+g.m)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = f.nodeWrite(j, p, nodeOff)
	}()
	for pi := 0; pi < g.m; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			errs[1+pi] = f.nodeWrite(g.k+pi, oldP[pi], nodeOff)
		}(pi)
	}
	wg.Wait()
	targets := append([]int{j}, func() []int {
		out := make([]int, g.m)
		for pi := range out {
			out[pi] = g.k + pi
		}
		return out
	}()...)
	return true, f.ss.settleWrite(targets, errs)
}

// writeBatch materializes stripes [bs0, bs1], overlays the written
// bytes, recomputes parity, and issues one contiguous write per node.
func (f *stripeFile) writeBatch(p []byte, off, end, bs0, bs1, l, newL int64) error {
	g := f.ss.geom
	span := g.span()
	nStripes := bs1 - bs0 + 1
	batchStart := bs0 * span
	batchEnd := (bs1 + 1) * span
	dataBufs := make([][]byte, g.k)
	for j := range dataBufs {
		dataBufs[j] = make([]byte, nStripes*g.s)
	}
	// Pre-read unless the write covers every pre-existing byte of the
	// batch's stripes.
	existingEnd := min64(batchEnd, l)
	if !(off <= batchStart && end >= existingEnd) && existingEnd > batchStart {
		if err := f.readShards(bs0, bs1, l, dataBufs, -1); err != nil {
			return err
		}
	}
	scatterBatch(g, p, off, end, bs0, bs1, dataBufs)

	var parityBufs [][]byte
	if g.m > 0 {
		parityBufs = make([][]byte, g.m)
		for pi := range parityBufs {
			parityBufs[pi] = make([]byte, nStripes*g.s)
		}
		shards := make([][]byte, g.k)
		pshards := make([][]byte, g.m)
		for r := int64(0); r < nStripes; r++ {
			for j := 0; j < g.k; j++ {
				shards[j] = dataBufs[j][r*g.s : (r+1)*g.s]
			}
			for pi := 0; pi < g.m; pi++ {
				pshards[pi] = parityBufs[pi][r*g.s : (r+1)*g.s]
			}
			if err := f.ss.code.Encode(shards, pshards); err != nil {
				return err
			}
		}
	}

	// One contiguous write per data node covering its slice of the
	// written range; parity nodes get the batch's full parity span
	// clamped to the new parity payload length.
	type wr struct {
		node int
		buf  []byte
		off  int64
	}
	var writes []wr
	wLo, wHi := max64(off, batchStart), min64(end, batchEnd)
	for j := 0; j < g.k; j++ {
		nlo, nhi, ok := g.nodeRange(j, wLo, wHi)
		if !ok {
			continue
		}
		writes = append(writes, wr{j, dataBufs[j][nlo-bs0*g.s : nhi-bs0*g.s], nlo})
	}
	plo := bs0 * g.s
	phi := min64((bs1+1)*g.s, g.parityLen(newL))
	for pi := 0; pi < g.m; pi++ {
		if phi <= plo {
			break
		}
		writes = append(writes, wr{g.k + pi, parityBufs[pi][:phi-plo], plo})
	}
	errs := make([]error, len(writes))
	targets := make([]int, len(writes))
	var wg sync.WaitGroup
	for i, w := range writes {
		targets[i] = w.node
		wg.Add(1)
		go func(i int, w wr) {
			defer wg.Done()
			errs[i] = f.nodeWrite(w.node, w.buf, w.off)
		}(i, w)
	}
	wg.Wait()
	return f.ss.settleWrite(targets, errs)
}

// settleWrite folds per-node write outcomes into the stale set: a node
// that missed a write is stale until rebuilt; the op as a whole fails
// only when the stale set outgrows parity.
func (ss *StripeSet) settleWrite(targets []int, errs []error) error {
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if err != errSkipped && !isNodeFault(err) {
			return err // logical error (ErrNoSpace…): surface directly
		}
		ss.nodes[targets[i]].stale.Store(true)
		if firstErr == nil && err != errSkipped {
			firstErr = err
		}
	}
	staleCount := 0
	for _, n := range ss.nodes {
		if n.stale.Load() {
			staleCount++
		}
	}
	if staleCount > ss.geom.m {
		if firstErr != nil {
			return fmt.Errorf("%w: %v", ErrDegraded, firstErr)
		}
		return ErrDegraded
	}
	return nil
}

// finishWrite extends parity file sizes to the new logical size (their
// size IS the logical size on disk) and updates the cache.
func (f *stripeFile) finishWrite(fm *fileMeta, l, newL int64) error {
	if newL > l && f.ss.geom.m > 0 {
		targets := make([]int, 0, f.ss.geom.m)
		errs := make([]error, 0, f.ss.geom.m)
		for pi := 0; pi < f.ss.geom.m; pi++ {
			i := f.ss.geom.k + pi
			err := f.ss.nodeCall(i, func(fs vfs.FileSystem) error {
				return fs.Truncate(f.path, newL)
			})
			targets = append(targets, i)
			errs = append(errs, err)
		}
		if err := f.ss.settleWrite(targets, errs); err != nil {
			return err
		}
	}
	fm.size = newL
	return nil
}

// Truncate sets the logical size.
func (f *stripeFile) Truncate(size int64) error {
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	return f.ss.truncatePath(f.path, size, f)
}

// Sync persists every node handle this file has touched.
func (f *stripeFile) Sync() error {
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	targets := make([]int, 0, len(f.nf))
	errs := make([]error, 0, len(f.nf))
	for i := range f.ss.nodes {
		f.hmu[i].Lock()
		h := f.nf[i]
		f.hmu[i].Unlock()
		if h == nil {
			continue
		}
		err := f.ss.nodeCall(i, func(vfs.FileSystem) error { return h.Sync() })
		targets = append(targets, i)
		errs = append(errs, err)
	}
	return f.ss.settleWrite(targets, errs)
}

// Close releases every node handle.
func (f *stripeFile) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	var first error
	for i := range f.ss.nodes {
		f.hmu[i].Lock()
		h := f.nf[i]
		f.nf[i] = nil
		f.hmu[i].Unlock()
		if h == nil {
			continue
		}
		if err := h.Close(); err != nil && first == nil && !isNodeFault(err) {
			first = err
		}
	}
	return first
}

// Stat returns the composed logical metadata.
func (f *stripeFile) Stat() (vfs.FileInfo, error) {
	if f.closed.Load() {
		return vfs.FileInfo{}, vfs.ErrClosed
	}
	return f.ss.Stat(f.path)
}

// Extents maps data-node extents back to logical runs (parity is
// invisible — it describes redundancy, not data).
func (f *stripeFile) Extents() ([]vfs.Extent, error) {
	if f.closed.Load() {
		return nil, vfs.ErrClosed
	}
	fm := f.ss.getMeta(f.path)
	if err := f.ss.ensureLoaded(f.path, fm); err != nil {
		return nil, err
	}
	fm.mu.RLock()
	defer fm.mu.RUnlock()
	l := fm.size
	if l == 0 {
		return nil, nil
	}
	g := f.ss.geom
	span := g.span()
	var all []vfs.Extent
	fallback := false
	for j := 0; j < g.k && !fallback; j++ {
		if !f.ss.usable(j) {
			fallback = true
			break
		}
		var nodeExt []vfs.Extent
		err := f.ss.nodeCall(j, func(fs vfs.FileSystem) error {
			h, err := f.handle(j, fs, false)
			if errors.Is(err, vfs.ErrNotExist) {
				return nil
			}
			if err != nil {
				return err
			}
			nodeExt, err = h.Extents()
			return err
		})
		if err != nil {
			fallback = true
			break
		}
		limit := g.nodeLen(j, l)
		for _, e := range nodeExt {
			lo := max64(e.Off, 0)
			hi := min64(e.End(), limit)
			for lo < hi {
				st := lo / g.s
				pieceHi := min64(hi, (st+1)*g.s)
				logical := st*span + int64(j)*g.s + (lo - st*g.s)
				all = append(all, vfs.Extent{Off: logical, Len: pieceHi - lo})
				lo = pieceHi
			}
		}
	}
	if fallback {
		// Degraded: report the conservative single run.
		return []vfs.Extent{{Off: 0, Len: l}}, nil
	}
	return sortExtents(all), nil
}

// PunchHole deallocates a logical range: full stripes are punched
// through to every node (parity included — parity of zeros is zero);
// boundary stripes read-modify-write parity and punch just the data
// shards.
func (f *stripeFile) PunchHole(off, n int64) error {
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	if off < 0 || n < 0 {
		return vfs.ErrInvalid
	}
	if n == 0 {
		return nil
	}
	fm := f.ss.getMeta(f.path)
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if err := f.ss.ensureLoadedLocked(f.path, fm); err != nil {
		return err
	}
	l := fm.size
	lo := off
	hi := min64(off+n, l)
	if lo >= hi {
		return nil
	}
	g := f.ss.geom
	span := g.span()

	// Full stripes covered entirely by the punch (or reaching EOF).
	fullLo := (lo + span - 1) / span
	fullHi := hi / span
	if hi == l && l%span != 0 {
		fullHi = (l + span - 1) / span // trailing partial stripe is fully cut
	}
	if fullHi > fullLo {
		nlo, nhi := fullLo*g.s, fullHi*g.s
		targets := make([]int, 0, g.k+g.m)
		errs := make([]error, 0, g.k+g.m)
		var wg sync.WaitGroup
		rese := make([]error, g.k+g.m)
		for i := 0; i < g.k+g.m; i++ {
			plo, phi := nlo, nhi
			if i >= g.k {
				phi = min64(phi, g.parityLen(l))
			} else {
				phi = min64(phi, g.nodeLen(i, l))
			}
			if phi <= plo {
				rese[i] = errNoop
				continue
			}
			wg.Add(1)
			go func(i int, plo, phi int64) {
				defer wg.Done()
				rese[i] = f.nodePunch(i, plo, phi-plo)
			}(i, plo, phi)
		}
		wg.Wait()
		for i, err := range rese {
			if err == errNoop {
				continue
			}
			targets = append(targets, i)
			errs = append(errs, err)
		}
		if err := f.ss.settleWrite(targets, errs); err != nil {
			return err
		}
	}

	// Boundary partial stripes (at most one on each side, but a short
	// punch can straddle two adjacent stripes): RMW parity, punch the
	// data shard ranges, stripe by stripe.
	for st := lo / span; st <= (hi-1)/span; st++ {
		if st >= fullLo && st < fullHi {
			continue
		}
		plo := max64(lo, st*span)
		phi := min64(hi, (st+1)*span)
		if plo >= phi {
			continue
		}
		if err := f.punchPartialStripe(st, plo, phi, l); err != nil {
			return err
		}
	}
	return nil
}

var errNoop = errors.New("ec: internal no-op marker")

// punchPartialStripe zeroes [lo, hi) inside stripe st: reread the
// stripe, recompute parity over the zeroed view, write parity, punch the
// data shard ranges.
func (f *stripeFile) punchPartialStripe(st, lo, hi, l int64) error {
	g := f.ss.geom
	dataBufs := make([][]byte, g.k)
	for j := range dataBufs {
		dataBufs[j] = make([]byte, g.s)
	}
	if err := f.readShards(st, st, l, dataBufs, -1); err != nil {
		return err
	}
	span := g.span()
	for j := 0; j < g.k; j++ {
		shardLo := st*span + int64(j)*g.s
		zlo := max64(lo, shardLo)
		zhi := min64(hi, shardLo+g.s)
		if zlo < zhi {
			zero(dataBufs[j][zlo-shardLo : zhi-shardLo])
		}
	}
	var targets []int
	var errs []error
	if g.m > 0 {
		parity := make([][]byte, g.m)
		for pi := range parity {
			parity[pi] = make([]byte, g.s)
		}
		if err := f.ss.code.Encode(dataBufs, parity); err != nil {
			return err
		}
		plo := st * g.s
		phi := min64((st+1)*g.s, g.parityLen(l))
		for pi := 0; pi < g.m; pi++ {
			if phi <= plo {
				break
			}
			err := f.nodeWrite(g.k+pi, parity[pi][:phi-plo], plo)
			targets = append(targets, g.k+pi)
			errs = append(errs, err)
		}
	}
	for j := 0; j < g.k; j++ {
		shardLo := st*span + int64(j)*g.s
		zlo := max64(lo, shardLo)
		zhi := min64(hi, shardLo+g.s)
		if zlo >= zhi {
			continue
		}
		nlo := st*g.s + zlo - shardLo
		err := f.nodePunch(j, nlo, zhi-zlo)
		targets = append(targets, j)
		errs = append(errs, err)
	}
	return f.ss.settleWrite(targets, errs)
}

// Truncate (path-level) adjusts every node: data nodes to their exact
// shard coverage, parity nodes to the logical size, recomputing the last
// partial stripe's parity on shrink.
func (ss *StripeSet) Truncate(path string, size int64) error {
	return ss.truncatePath(vfs.CleanPath(path), size, nil)
}

func (ss *StripeSet) truncatePath(path string, size int64, via *stripeFile) error {
	if size < 0 {
		return vfs.ErrInvalid
	}
	fm := ss.getMeta(path)
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if err := ss.ensureLoadedLocked(path, fm); err != nil {
		return err
	}
	l := fm.size
	g := ss.geom
	span := g.span()
	scratch := via
	if scratch == nil {
		scratch = ss.newFile(path)
		defer scratch.Close()
	}

	// On shrink into a partial stripe, capture the stripe with the OLD
	// parity first — reconstruction needs old parity to be consistent
	// with old data.
	var newParity [][]byte
	shrinkPartial := g.m > 0 && size < l && size%span != 0
	st := size / span
	if shrinkPartial {
		dataBufs := make([][]byte, g.k)
		for j := range dataBufs {
			dataBufs[j] = make([]byte, g.s)
		}
		if err := scratch.readShards(st, st, l, dataBufs, -1); err != nil {
			return err
		}
		for j := 0; j < g.k; j++ {
			keep := g.nodeLen(j, size) - st*g.s
			if keep < 0 {
				keep = 0
			}
			if keep < g.s {
				zero(dataBufs[j][keep:])
			}
		}
		newParity = make([][]byte, g.m)
		for pi := range newParity {
			newParity[pi] = make([]byte, g.s)
		}
		if err := ss.code.Encode(dataBufs, newParity); err != nil {
			return err
		}
	}

	// Data nodes: exact shard coverage (grow leaves holes, shrink cuts).
	targets := make([]int, 0, len(ss.nodes))
	errs := make([]error, 0, len(ss.nodes))
	var wg sync.WaitGroup
	rese := make([]error, len(ss.nodes))
	for j := 0; j < g.k; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			rese[j] = ss.nodeCall(j, func(fs vfs.FileSystem) error {
				return fs.Truncate(path, g.nodeLen(j, size))
			})
		}(j)
	}
	// Parity nodes: on shrink, first drop to the parity payload length so
	// no stale parity survives in the hole region a later grow would
	// expose; then (below) extend to the logical size.
	for pi := 0; pi < g.m; pi++ {
		i := g.k + pi
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rese[i] = ss.nodeCall(i, func(fs vfs.FileSystem) error {
				if size < l {
					if err := fs.Truncate(path, g.parityLen(size)); err != nil {
						return err
					}
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	for i, err := range rese {
		targets = append(targets, i)
		errs = append(errs, err)
	}
	if err := ss.settleWrite(targets, errs); err != nil {
		return err
	}

	if shrinkPartial {
		plo := st * g.s
		phi := g.parityLen(size)
		targets = targets[:0]
		errs = errs[:0]
		for pi := 0; pi < g.m; pi++ {
			if phi <= plo {
				break
			}
			err := scratch.nodeWrite(g.k+pi, newParity[pi][:phi-plo], plo)
			targets = append(targets, g.k+pi)
			errs = append(errs, err)
		}
		if err := ss.settleWrite(targets, errs); err != nil {
			return err
		}
	}

	// Parity file size = logical size, always.
	targets = targets[:0]
	errs = errs[:0]
	for pi := 0; pi < g.m; pi++ {
		i := g.k + pi
		err := ss.nodeCall(i, func(fs vfs.FileSystem) error {
			return fs.Truncate(path, size)
		})
		targets = append(targets, i)
		errs = append(errs, err)
	}
	if err := ss.settleWrite(targets, errs); err != nil {
		return err
	}
	fm.size = size
	return nil
}
