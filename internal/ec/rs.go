package ec

import (
	"errors"
	"fmt"
)

// Code is a systematic (k+m, k) Reed–Solomon erasure code: k data shards
// plus m parity shards, any k of the k+m suffice to recover all data.
//
// The generator is the standard Vandermonde construction made systematic:
// build the (k+m)×k Vandermonde matrix V[i][j] = i^j, left-multiply by the
// inverse of its top k×k block so the first k rows become the identity,
// and keep the bottom m rows as the parity matrix. For m = 1 every parity
// coefficient is 1 and encoding degenerates to XOR (RAID-4/5 parity),
// which Encode special-cases.
type Code struct {
	k, m int
	// parity is the m×k coefficient block: parity[p][j] is the weight of
	// data shard j in parity shard p.
	parity [][]byte
}

// Errors returned by the codec.
var (
	ErrShardCount = errors.New("ec: invalid shard count")
	ErrShardSize  = errors.New("ec: shards differ in length")
	ErrTooFewLive = errors.New("ec: too many missing shards to reconstruct")
)

// NewCode builds a (k+m, k) code. k ≥ 1, m ≥ 0, k+m ≤ 256.
func NewCode(k, m int) (*Code, error) {
	if k < 1 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrShardCount, k, m)
	}
	c := &Code{k: k, m: m}
	if m == 0 {
		return c, nil
	}
	// Vandermonde rows for the full code, then normalize the top block to
	// the identity.
	v := vandermonde(k+m, k)
	top := make([][]byte, k)
	for i := range top {
		top[i] = append([]byte(nil), v[i]...)
	}
	inv, err := invertMatrix(top)
	if err != nil {
		return nil, err
	}
	full := matMul(v, inv) // (k+m)×k, first k rows = identity
	c.parity = full[k:]
	return c, nil
}

// K and M report the code geometry.
func (c *Code) K() int { return c.k }
func (c *Code) M() int { return c.m }

// Encode computes the m parity shards from the k data shards. All shards
// must have equal length; parity slices are overwritten in place.
func (c *Code) Encode(data, parity [][]byte) error {
	if len(data) != c.k || len(parity) != c.m {
		return ErrShardCount
	}
	if c.m == 0 {
		return nil
	}
	n := len(data[0])
	for _, d := range data {
		if len(d) != n {
			return ErrShardSize
		}
	}
	for _, p := range parity {
		if len(p) != n {
			return ErrShardSize
		}
	}
	if c.m == 1 {
		// XOR fast path: single parity is the XOR of all data shards.
		copy(parity[0], data[0])
		for j := 1; j < c.k; j++ {
			xorSlice(data[j], parity[0])
		}
		return nil
	}
	for p := 0; p < c.m; p++ {
		mulSlice(c.parity[p][0], data[0], parity[p])
		for j := 1; j < c.k; j++ {
			mulSliceXor(c.parity[p][j], data[j], parity[p])
		}
	}
	return nil
}

// Reconstruct fills in the missing shards. shards has k+m entries in code
// order (data 0..k-1, then parity 0..m-1); present[i] reports whether
// shards[i] holds valid bytes. Missing entries must be pre-allocated to
// the common shard length; they are overwritten with the recovered
// content (both data and parity shards are rebuilt).
func (c *Code) Reconstruct(shards [][]byte, present []bool) error {
	if len(shards) != c.k+c.m || len(present) != c.k+c.m {
		return ErrShardCount
	}
	live := 0
	n := -1
	for i, ok := range present {
		if !ok {
			continue
		}
		live++
		if n < 0 {
			n = len(shards[i])
		} else if len(shards[i]) != n {
			return ErrShardSize
		}
	}
	if live < c.k {
		return ErrTooFewLive
	}
	missingData := false
	for j := 0; j < c.k; j++ {
		if !present[j] {
			missingData = true
			break
		}
	}
	if missingData {
		if c.m == 1 {
			// Exactly one shard can be absent; XOR of the other k
			// recovers it regardless of whether it is data or parity.
			var miss int
			for i, ok := range present {
				if !ok {
					miss = i
					break
				}
			}
			dst := shards[miss]
			first := true
			for i, ok := range present {
				if !ok || i == miss {
					continue
				}
				if first {
					copy(dst, shards[i])
					first = false
				} else {
					xorSlice(shards[i], dst)
				}
			}
		} else {
			if err := c.decodeData(shards, present); err != nil {
				return err
			}
		}
	}
	// With all data shards valid, regenerate any missing parity.
	for p := 0; p < c.m; p++ {
		if present[c.k+p] {
			continue
		}
		dst := shards[c.k+p]
		if c.m == 1 {
			copy(dst, shards[0])
			for j := 1; j < c.k; j++ {
				xorSlice(shards[j], dst)
			}
		} else {
			mulSlice(c.parity[p][0], shards[0], dst)
			for j := 1; j < c.k; j++ {
				mulSliceXor(c.parity[p][j], shards[j], dst)
			}
		}
	}
	return nil
}

// decodeData recovers the missing data shards (general m ≥ 2 path): pick
// k live rows of the systematic generator, invert that k×k submatrix, and
// the rows of the inverse corresponding to missing data shards give the
// recovery combinations of the live shards.
func (c *Code) decodeData(shards [][]byte, present []bool) error {
	rows := make([][]byte, 0, c.k)
	src := make([][]byte, 0, c.k)
	for i := 0; i < c.k+c.m && len(rows) < c.k; i++ {
		if !present[i] {
			continue
		}
		row := make([]byte, c.k)
		if i < c.k {
			row[i] = 1
		} else {
			copy(row, c.parity[i-c.k])
		}
		rows = append(rows, row)
		src = append(src, shards[i])
	}
	inv, err := invertMatrix(rows)
	if err != nil {
		return err
	}
	for j := 0; j < c.k; j++ {
		if present[j] {
			continue
		}
		dst := shards[j]
		mulSlice(inv[j][0], src[0], dst)
		for t := 1; t < c.k; t++ {
			mulSliceXor(inv[j][t], src[t], dst)
		}
	}
	return nil
}

// vandermonde returns the rows×cols matrix V[i][j] = i^j over GF(2^8).
func vandermonde(rows, cols int) [][]byte {
	v := make([][]byte, rows)
	for i := range v {
		v[i] = make([]byte, cols)
		e := byte(1)
		for j := 0; j < cols; j++ {
			v[i][j] = e
			e = gfMul(e, byte(i))
		}
	}
	return v
}

// matMul multiplies a (r×n) by b (n×c) over GF(2^8).
func matMul(a, b [][]byte) [][]byte {
	r, n, cN := len(a), len(b), len(b[0])
	out := make([][]byte, r)
	for i := 0; i < r; i++ {
		out[i] = make([]byte, cN)
		for j := 0; j < cN; j++ {
			var s byte
			for t := 0; t < n; t++ {
				s ^= gfMul(a[i][t], b[t][j])
			}
			out[i][j] = s
		}
	}
	return out
}

// invertMatrix Gauss-Jordan-inverts a square matrix over GF(2^8). The
// input is consumed (rows are modified in place).
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("ec: singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := m[col][col]; p != 1 {
			ip := gfInv(p)
			for j := 0; j < n; j++ {
				m[col][j] = gfMul(m[col][j], ip)
				inv[col][j] = gfMul(inv[col][j], ip)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := 0; j < n; j++ {
				m[r][j] ^= gfMul(f, m[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}
