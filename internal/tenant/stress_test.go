package tenant

import (
	"testing"
	"time"

	"muxfs/internal/device"
	"muxfs/internal/policy"
	"muxfs/internal/policy/autotune"
)

// TestAutotuneUnderConcurrentTrafficAndFaults is the -race stress drill:
// the autotuner mutates live policy knobs from inside RunPolicyOnce while
// tenant goroutines hammer the data path, a second goroutine twiddles the
// same knobs directly (a concurrent operator via muxsh), and the SSD tier
// injects transient read/write faults. The assertions are weak on purpose
// — the test's value is the interleaving under -race, plus the no-wedge
// contract: params never escape their clamps and the Mux still serves I/O
// afterwards.
func TestAutotuneUnderConcurrentTrafficAndFaults(t *testing.T) {
	pol := &policy.QuotaPolicy{
		Base:   policy.DefaultLRU(),
		Quotas: []policy.Quota{{Prefix: "/v/", Tier: 0, Bytes: 4 << 20}},
	}
	m, clk, ssd := testMux(t, pol)
	if err := m.EnableAutotune(autotune.Options{MinIntervalOps: 1}); err != nil {
		t.Fatal(err)
	}

	specs := []Spec{
		{Name: "victim", Prefix: "/v/", Files: 128, FileSize: 64 << 10, OpSize: 4096,
			ReadFrac: 0.8, Skew: 1.5, Seed: 11,
			Phases: []Phase{{Mult: 1, Rounds: 3}, {Mult: 0.2, Rounds: 1}}},
		{Name: "aggr", Prefix: "/a/", Files: 512, FileSize: 64 << 10, OpSize: 16384,
			ReadFrac: 0.6, Scan: true, Seed: 12},
		{Name: "mixed", Prefix: "/x/", Files: 64, FileSize: 32 << 10, OpSize: 4096,
			ReadFrac: 0.3, Skew: 1.1, Seed: 13},
	}
	var rs []*Runner
	for _, s := range specs {
		r, err := New(m, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterTenant(s.Name, s.Prefix); err != nil {
			t.Fatal(err)
		}
		if err := r.Populate(8); err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}

	stop := make(chan struct{})
	wg := RunConcurrent(rs, stop)

	// Policy rounds + autotune steps race the traffic.
	roundsDone := make(chan struct{})
	go func() {
		defer close(roundsDone)
		for i := 0; i < 60; i++ {
			clk.Advance(time.Millisecond)
			_, _ = m.RunPolicyOnce() // fault-induced errors are expected
			if i == 20 {
				ssd.InjectFaults(device.FaultPlan{
					Seed: 99, ReadErrProb: 0.05, WriteErrProb: 0.05,
					LatencyProb: 0.1, LatencySpike: 2 * time.Millisecond,
				})
			}
			if i == 45 {
				ssd.ClearFaults()
			}
		}
	}()

	// A concurrent operator fights the tuner over the same knobs.
	opDone := make(chan struct{})
	go func() {
		defer close(opDone)
		tun := m.Policy().(policy.Tunable)
		params := tun.Params()
		for i := 0; i < 200; i++ {
			p := params[i%len(params)]
			_ = tun.SetParam(p.Name, p.Min+float64(i%5)*p.Step)
		}
	}()

	<-roundsDone
	<-opDone
	close(stop)
	wg.Wait()
	ssd.ClearFaults()

	tn := m.Autotuner()
	if tn == nil {
		t.Fatal("tuner lost during stress")
	}
	st := tn.Status()
	if st.Rounds != 60 {
		t.Fatalf("tuner rounds = %d, want 60", st.Rounds)
	}
	for _, p := range st.Params {
		if p.Value < p.Min-1e-9 || p.Value > p.Max+1e-9 {
			t.Fatalf("param %s = %v escaped [%v, %v] under stress", p.Name, p.Value, p.Min, p.Max)
		}
	}
	// The hierarchy still serves I/O end to end after the storm.
	if err := rs[0].Step(); err != nil {
		t.Fatalf("post-stress op failed: %v", err)
	}
	var ops int64
	for _, r := range rs {
		ops += r.Stats.Ops.Load()
	}
	if ops == 0 {
		t.Fatal("no tenant ops completed during stress")
	}
}
