// Package tenant is the multi-tenant workload harness: each tenant is a
// path prefix plus a synthetic workload (zipfian heat with its own skew,
// bursty diurnal phases on the virtual clock, a configurable read/write
// mix), and many tenants run against one Mux so experiments can measure
// interference — does an aggressor's cold scan inflate a victim's p99, do
// quotas hold each tenant to its fast-tier share, how fair is throughput?
//
// Everything is deterministic by construction: a Runner owns a seeded PRNG
// and RunRounds interleaves tenants one op at a time on a single
// goroutine, so a given (specs, seed, rounds) tuple always produces the
// same op sequence, the same placements, and — on the virtual clock — the
// same latencies. RunConcurrent trades that determinism for real
// parallelism and exists for -race stress, not for measurement.
//
// Namespaces are sparse: a tenant may declare a million files, but a file
// costs nothing until first touch (lazy Create + Truncate leaves a hole,
// no data blocks), so huge cold namespaces are cheap and only the working
// set the zipf distribution actually visits materializes.
package tenant

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"

	"muxfs/internal/vfs"
)

// Phase is one segment of a tenant's diurnal cycle: for Rounds rounds the
// tenant issues Mult× its base op budget. Phases repeat cyclically, so
// {day ×1.0, night ×0.1} models a burst/lull rhythm without wall clocks.
type Phase struct {
	Mult   float64
	Rounds int
}

// Spec declares one tenant's workload.
type Spec struct {
	Name   string // tenant name (also registered with the Mux for telemetry)
	Prefix string // absolute path prefix owning the tenant's files, e.g. "/a/"

	Files    int   // namespace size; sparsely populated (up to ~1M is fine)
	FileSize int64 // logical size of each file
	OpSize   int   // bytes per read/write op

	ReadFrac float64 // fraction of ops that are reads, in [0,1]
	Skew     float64 // zipf s parameter; higher = hotter head. Values <=1 clamp to 1.01
	Scan     bool    // sequential cold scan over the whole namespace (the aggressor shape)

	// Churn turns the tenant into a log-structured appender: writes fill
	// the namespace sequentially (OpSize slots, file by file, wrapping at
	// the end) so fresh blocks allocate continuously, and reads pick
	// uniformly among the last Recent fully-written files — the newest
	// data is the hottest, like a time-series or ingest pipeline. This is
	// the shape that keeps a tiering policy's demote-place loop running
	// forever, so watermark knobs have steady-state consequences.
	Churn  bool
	Recent int // recency read window in files; required with Churn

	Seed   int64   // PRNG seed; two runners with equal Spec replay identically
	Phases []Phase // optional diurnal cycle; empty = steady ×1.0
}

// Stats counts a runner's completed work. Counters are atomic so
// RunConcurrent can share them with a reader.
type Stats struct {
	Ops          atomic.Int64
	Reads        atomic.Int64
	Writes       atomic.Int64
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
	Errs         atomic.Int64
}

// Runner drives one tenant's workload against a file system (normally the
// Mux, but any vfs.FileSystem works). Not safe for concurrent Step calls;
// RunConcurrent gives each runner its own goroutine.
type Runner struct {
	Spec  Spec
	Stats Stats

	fs      vfs.FileSystem
	rng     *rand.Rand
	zipf    *rand.Zipf
	scanPos int
	head    int // churn write cursor, in OpSize slots across the namespace
	round   int
	buf     []byte

	mu      sync.Mutex
	created map[int]bool // lazily materialized files
}

// New validates the spec and builds a runner.
func New(fs vfs.FileSystem, spec Spec) (*Runner, error) {
	if spec.Name == "" {
		return nil, errors.New("tenant: empty name")
	}
	if len(spec.Prefix) == 0 || spec.Prefix[0] != '/' {
		return nil, fmt.Errorf("tenant %s: prefix %q must be absolute", spec.Name, spec.Prefix)
	}
	if spec.Files <= 0 || spec.FileSize <= 0 {
		return nil, fmt.Errorf("tenant %s: need Files and FileSize > 0", spec.Name)
	}
	if spec.OpSize <= 0 {
		spec.OpSize = 4096
	}
	if int64(spec.OpSize) > spec.FileSize {
		spec.OpSize = int(spec.FileSize)
	}
	if spec.ReadFrac < 0 || spec.ReadFrac > 1 {
		return nil, fmt.Errorf("tenant %s: ReadFrac %v outside [0,1]", spec.Name, spec.ReadFrac)
	}
	if spec.Churn && spec.Scan {
		return nil, fmt.Errorf("tenant %s: Churn and Scan are mutually exclusive", spec.Name)
	}
	if spec.Churn && spec.Recent <= 0 {
		return nil, fmt.Errorf("tenant %s: Churn needs a Recent read window", spec.Name)
	}
	if !spec.Churn && spec.Recent > 0 {
		return nil, fmt.Errorf("tenant %s: Recent only applies to Churn tenants", spec.Name)
	}
	if spec.Recent > spec.Files {
		spec.Recent = spec.Files
	}
	s := spec.Skew
	if s <= 1 {
		s = 1.01
	}
	for i, ph := range spec.Phases {
		if ph.Rounds <= 0 || ph.Mult < 0 {
			return nil, fmt.Errorf("tenant %s: phase %d invalid", spec.Name, i)
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	return &Runner{
		Spec:    spec,
		fs:      fs,
		rng:     rng,
		zipf:    rand.NewZipf(rng, s, 1, uint64(spec.Files-1)+1),
		buf:     make([]byte, spec.OpSize),
		created: make(map[int]bool, 64),
	}, nil
}

// Path returns file i's path under the tenant prefix — the naming scheme
// benchmarks rely on to seed or inspect a tenant's files directly.
func (r *Runner) Path(i int) string { return r.path(i) }

// path returns file i's path under the tenant prefix.
func (r *Runner) path(i int) string {
	p := r.Spec.Prefix
	if p[len(p)-1] != '/' {
		p += "/"
	}
	return p + "f" + strconv.Itoa(i)
}

// dir returns the tenant's directory (the prefix without trailing slash).
func (r *Runner) dir() string {
	p := r.Spec.Prefix
	if len(p) > 1 && p[len(p)-1] == '/' {
		p = p[:len(p)-1]
	}
	return p
}

// Populate creates the tenant directory and eagerly materializes up to
// eager files. Eager files are sparse too (Truncate leaves a hole), so
// even eager==Files costs only namespace entries; data blocks appear when
// ops write. Files beyond eager materialize lazily on first touch.
func (r *Runner) Populate(eager int) error {
	if err := r.fs.Mkdir(r.dir()); err != nil && !errors.Is(err, vfs.ErrExist) {
		return fmt.Errorf("tenant %s: mkdir: %w", r.Spec.Name, err)
	}
	if eager > r.Spec.Files {
		eager = r.Spec.Files
	}
	for i := 0; i < eager; i++ {
		if err := r.ensure(i); err != nil {
			return err
		}
	}
	return nil
}

// ensure materializes file i if it does not exist yet.
func (r *Runner) ensure(i int) error {
	r.mu.Lock()
	done := r.created[i]
	r.mu.Unlock()
	if done {
		return nil
	}
	f, err := r.fs.Create(r.path(i))
	switch {
	case err == nil:
		terr := f.Truncate(r.Spec.FileSize)
		cerr := f.Close()
		if terr != nil {
			return terr
		}
		if cerr != nil {
			return cerr
		}
	case errors.Is(err, vfs.ErrExist):
		// Another runner's round (or a previous run) made it — fine.
	default:
		return fmt.Errorf("tenant %s: create %s: %w", r.Spec.Name, r.path(i), err)
	}
	r.mu.Lock()
	r.created[i] = true
	r.mu.Unlock()
	return nil
}

// pick chooses the next file index: zipf for heat-skewed tenants, a strict
// sequential sweep for scanners.
func (r *Runner) pick() int {
	if r.Spec.Scan {
		i := r.scanPos
		r.scanPos = (r.scanPos + 1) % r.Spec.Files
		return i
	}
	return int(r.zipf.Uint64())
}

// slots is the number of OpSize slots per file.
func (r *Runner) slots() int {
	s := int(r.Spec.FileSize / int64(r.Spec.OpSize))
	if s < 1 {
		s = 1
	}
	return s
}

// churnTarget picks the (file, offset) for one churn-tenant op. Writes
// advance the append head one slot at a time; reads land uniformly in the
// Recent newest fully-written files. The head index grows without bound
// (file identity is head mod Files), so the fully-written count stays
// monotone across namespace wraparound.
func (r *Runner) churnTarget(read bool) (int, int64) {
	slots := r.slots()
	if !read {
		h := r.head
		r.head++
		return (h / slots) % r.Spec.Files, int64(h%slots) * int64(r.Spec.OpSize)
	}
	full := r.head / slots // fully-written files so far
	if full == 0 {
		return 0, 0 // cold start: nothing complete yet
	}
	w := r.Spec.Recent
	if w > full {
		w = full
	}
	dist := 1 + r.rng.Intn(w)
	return (full - dist) % r.Spec.Files, int64(r.rng.Intn(slots)) * int64(r.Spec.OpSize)
}

// Step performs one op (read or write of OpSize bytes at an aligned offset
// of a picked file). Errors are counted and returned; callers that keep
// going treat them as part of the workload (e.g. fault-injection stress).
func (r *Runner) Step() error {
	read := r.rng.Float64() < r.Spec.ReadFrac
	var i int
	var off int64
	switch {
	case r.Spec.Churn:
		i, off = r.churnTarget(read)
	case r.Spec.Scan:
		// Scanners stream sequentially: next file, offset 0.
		i = r.pick()
	default:
		i = r.pick()
		off = int64(r.rng.Intn(r.slots())) * int64(r.Spec.OpSize)
	}
	if err := r.ensure(i); err != nil {
		r.Stats.Errs.Add(1)
		return err
	}

	f, err := r.fs.Open(r.path(i))
	if err != nil {
		r.Stats.Errs.Add(1)
		return err
	}
	defer f.Close()
	if read {
		n, err := f.ReadAt(r.buf, off)
		r.Stats.Ops.Add(1)
		r.Stats.Reads.Add(1)
		r.Stats.BytesRead.Add(int64(n))
		if err != nil && !errors.Is(err, io.EOF) {
			r.Stats.Errs.Add(1)
			return err
		}
		return nil
	}
	n, err := f.WriteAt(r.buf, off)
	r.Stats.Ops.Add(1)
	r.Stats.Writes.Add(1)
	r.Stats.BytesWritten.Add(int64(n))
	if err != nil {
		r.Stats.Errs.Add(1)
		return err
	}
	return nil
}

// opsThisRound applies the diurnal phase multiplier for round number n
// (0-based) to the base per-round budget.
func (r *Runner) opsThisRound(n, base int) int {
	if len(r.Spec.Phases) == 0 {
		return base
	}
	total := 0
	for _, ph := range r.Spec.Phases {
		total += ph.Rounds
	}
	k := n % total
	for _, ph := range r.Spec.Phases {
		if k < ph.Rounds {
			return int(float64(base) * ph.Mult)
		}
		k -= ph.Rounds
	}
	return base
}

// RunRounds drives all runners for the given number of rounds on the
// calling goroutine. Within a round the runners' ops interleave one at a
// time (round-robin) so contention is modeled but the sequence is
// deterministic. After each round the optional between hook runs —
// typically RunPolicyOnce plus a clock advance. The first hard error from
// a runner or the hook stops the run.
func RunRounds(runners []*Runner, rounds, opsPerRound int, between func(round int) error) error {
	for n := 0; n < rounds; n++ {
		budgets := make([]int, len(runners))
		maxB := 0
		for i, r := range runners {
			budgets[i] = r.opsThisRound(n, opsPerRound)
			if budgets[i] > maxB {
				maxB = budgets[i]
			}
		}
		for k := 0; k < maxB; k++ {
			for i, r := range runners {
				if k >= budgets[i] {
					continue
				}
				if err := r.Step(); err != nil {
					return fmt.Errorf("tenant %s round %d: %w", r.Spec.Name, n, err)
				}
				r.round = n
			}
		}
		if between != nil {
			if err := between(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunConcurrent runs every runner in its own goroutine until stop closes,
// for -race stress. Op errors are counted in Stats.Errs and swallowed:
// under fault injection errors ARE the workload.
func RunConcurrent(runners []*Runner, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for _, r := range runners {
		wg.Add(1)
		go func(r *Runner) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Step() // counted in Stats.Errs
			}
		}(r)
	}
	return &wg
}

// Jain computes the Jain fairness index of the given shares: 1.0 when all
// equal, approaching 1/n as one tenant starves the rest. Empty or all-zero
// input returns 0.
func Jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
