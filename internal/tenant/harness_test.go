package tenant

import (
	"errors"
	"testing"
	"time"

	"muxfs/internal/core"
	"muxfs/internal/device"
	"muxfs/internal/fs/extlite"
	"muxfs/internal/fs/novafs"
	"muxfs/internal/fs/xfslite"
	"muxfs/internal/policy"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

// testMux builds a small three-tier Mux for harness tests.
func testMux(t *testing.T, pol policy.Policy) (*core.Mux, *simclock.Clock, *device.Device) {
	t.Helper()
	clk := simclock.New()
	pm := device.New(device.PMProfile("pmem0"), clk)
	ssd := device.New(device.SSDProfile("ssd0"), clk)
	hddProf := device.HDDProfile("hdd0")
	hddProf.Capacity = 1 << 30
	hdd := device.New(hddProf, clk)
	m, err := core.New(core.Config{Name: "mux", Clock: clk, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	nova, err := novafs.New("nova@pmem0", pm, novafs.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	xfs, err := xfslite.New("xfs@ssd0", ssd)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := extlite.New("ext4@hdd0", hdd)
	if err != nil {
		t.Fatal(err)
	}
	m.AddTier(nova, pm.Profile())
	m.AddTier(xfs, ssd.Profile())
	m.AddTier(ext, hdd.Profile())
	return m, clk, ssd
}

func twoTenants(t *testing.T, m *core.Mux) []*Runner {
	t.Helper()
	specs := []Spec{
		{Name: "victim", Prefix: "/v/", Files: 64, FileSize: 32 << 10, OpSize: 4096,
			ReadFrac: 0.9, Skew: 1.2, Seed: 1},
		{Name: "aggr", Prefix: "/a/", Files: 256, FileSize: 32 << 10, OpSize: 8192,
			ReadFrac: 0.5, Scan: true, Seed: 2},
	}
	var rs []*Runner
	for _, s := range specs {
		r, err := New(m, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterTenant(s.Name, s.Prefix); err != nil {
			t.Fatal(err)
		}
		if err := r.Populate(8); err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	return rs
}

// TestDeterministicReplay: two identical builds of the world produce
// byte-identical per-tenant telemetry — the property every E14 gate
// depends on.
func TestDeterministicReplay(t *testing.T) {
	run := func() []core.TenantTelemetry {
		m, clk, _ := testMux(t, policy.DefaultLRU())
		rs := twoTenants(t, m)
		err := RunRounds(rs, 4, 50, func(int) error {
			clk.Advance(time.Millisecond)
			_, err := m.RunPolicyOnce()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.TenantTelemetrySnapshot()
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("snapshot sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Reads != b[i].Reads || a[i].Writes != b[i].Writes ||
			a[i].ReadBytes != b[i].ReadBytes || a[i].WriteBytes != b[i].WriteBytes ||
			a[i].ReadP99 != b[i].ReadP99 || a[i].FastBytes != b[i].FastBytes {
			t.Fatalf("run diverged for %s:\n  %+v\n  %+v", a[i].Name, a[i], b[i])
		}
	}
	// And the harness's own counters agree with the Mux's attribution.
	if a[0].Name != "aggr" || a[1].Name != "victim" {
		t.Fatalf("unexpected tenant order: %s, %s", a[0].Name, a[1].Name)
	}
}

// TestAttributionMatchesHarnessCounters cross-checks the two accounting
// systems op for op.
func TestAttributionMatchesHarnessCounters(t *testing.T) {
	m, clk, _ := testMux(t, policy.DefaultLRU())
	rs := twoTenants(t, m)
	if err := RunRounds(rs, 2, 40, func(int) error {
		clk.Advance(time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	snap := m.TenantTelemetrySnapshot()
	byName := map[string]core.TenantTelemetry{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	for _, r := range rs {
		got := byName[r.Spec.Name]
		if got.Reads != r.Stats.Reads.Load() || got.Writes != r.Stats.Writes.Load() {
			t.Fatalf("%s: mux saw %d/%d, harness did %d/%d",
				r.Spec.Name, got.Reads, got.Writes, r.Stats.Reads.Load(), r.Stats.Writes.Load())
		}
		if got.ReadBytes != r.Stats.BytesRead.Load() {
			t.Fatalf("%s: read bytes %d vs %d", r.Spec.Name, got.ReadBytes, r.Stats.BytesRead.Load())
		}
	}
}

// TestSparseNamespace: a large namespace costs nothing until touched, and
// an untouched-but-ensured file holds no data blocks.
func TestSparseNamespace(t *testing.T) {
	m, _, _ := testMux(t, policy.DefaultLRU())
	r, err := New(m, Spec{Name: "big", Prefix: "/big/", Files: 1_000_000,
		FileSize: 1 << 20, OpSize: 4096, ReadFrac: 1.0, Skew: 2.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Populate(4); err != nil {
		t.Fatal(err)
	}
	// Only the eager files exist; the tail of the million is unmaterialized.
	if _, err := m.Stat("/big/f999999"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("tail file exists before first touch: %v", err)
	}
	fi, err := m.Stat("/big/f0")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 1<<20 || fi.Blocks != 0 {
		t.Fatalf("eager file size=%d blocks=%d, want sparse 1MiB hole", fi.Size, fi.Blocks)
	}
	// Read-only steps over the zipf head materialize lazily without errors.
	for i := 0; i < 50; i++ {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Stats.Reads.Load() != 50 || r.Stats.Errs.Load() != 0 {
		t.Fatalf("reads=%d errs=%d", r.Stats.Reads.Load(), r.Stats.Errs.Load())
	}
}

// TestZipfSkewConcentratesHeat: with high skew most picks land on a small
// head of the namespace; with a scan they never repeat until wraparound.
func TestZipfSkewConcentratesHeat(t *testing.T) {
	m, _, _ := testMux(t, policy.DefaultLRU())
	r, err := New(m, Spec{Name: "z", Prefix: "/z/", Files: 1000,
		FileSize: 8192, OpSize: 4096, ReadFrac: 1, Skew: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	head := 0
	for i := 0; i < 2000; i++ {
		if r.pick() < 10 {
			head++
		}
	}
	if head < 1200 {
		t.Fatalf("only %d/2000 picks in the head with skew 2.5", head)
	}

	s, err := New(m, Spec{Name: "s", Prefix: "/s/", Files: 100,
		FileSize: 8192, OpSize: 4096, ReadFrac: 1, Scan: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := s.pick(); got != i {
			t.Fatalf("scan pick %d = %d", i, got)
		}
	}
	if got := s.pick(); got != 0 {
		t.Fatalf("scan did not wrap: %d", got)
	}
}

func TestPhasesModulateOps(t *testing.T) {
	r := &Runner{Spec: Spec{Phases: []Phase{{Mult: 1, Rounds: 2}, {Mult: 0.25, Rounds: 1}}}}
	want := []int{100, 100, 25, 100, 100, 25}
	for n, w := range want {
		if got := r.opsThisRound(n, 100); got != w {
			t.Fatalf("round %d: ops=%d want %d", n, got, w)
		}
	}
	steady := &Runner{Spec: Spec{}}
	if got := steady.opsThisRound(5, 77); got != 77 {
		t.Fatalf("steady ops = %d", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := Jain([]float64{1, 1, 1, 1}); got < 0.999 {
		t.Fatalf("equal shares: %v", got)
	}
	if got := Jain([]float64{1, 0, 0, 0}); got > 0.2501 || got < 0.2499 {
		t.Fatalf("starved shares: %v", got)
	}
	if got := Jain(nil); got != 0 {
		t.Fatalf("empty: %v", got)
	}
}

func TestSpecValidation(t *testing.T) {
	m, _, _ := testMux(t, policy.DefaultLRU())
	bad := []Spec{
		{Prefix: "/x/", Files: 1, FileSize: 1},            // no name
		{Name: "a", Prefix: "x/", Files: 1, FileSize: 1},  // relative prefix
		{Name: "a", Prefix: "/x/", Files: 0, FileSize: 1}, // no files
		{Name: "a", Prefix: "/x/", Files: 1, FileSize: 1, ReadFrac: 2},
		{Name: "a", Prefix: "/x/", Files: 1, FileSize: 1, Phases: []Phase{{Mult: 1, Rounds: 0}}},
	}
	for i, s := range bad {
		if _, err := New(m, s); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, s)
		}
	}
}
