package fsbase

import (
	"time"

	"muxfs/internal/vfs"
)

// Meta is the mutable inode metadata every native file system tracks.
type Meta struct {
	Size    int64
	Blocks  int64 // allocated bytes (sparse-aware)
	Mode    vfs.FileMode
	ModTime time.Duration
	ATime   time.Duration
	CTime   time.Duration
}

// Info assembles a vfs.FileInfo for path from the metadata.
func (m *Meta) Info(path string) vfs.FileInfo {
	return vfs.FileInfo{
		Path:    path,
		Size:    m.Size,
		Blocks:  m.Blocks,
		Mode:    m.Mode,
		ModTime: m.ModTime,
		ATime:   m.ATime,
		CTime:   m.CTime,
	}
}

// Apply folds a partial SetAttr into the metadata and reports whether
// anything changed. Size changes are the caller's job (they move data);
// Apply only records the new value.
func (m *Meta) Apply(attr vfs.SetAttr, now time.Duration) bool {
	changed := false
	if attr.Size != nil && *attr.Size != m.Size {
		m.Size = *attr.Size
		changed = true
	}
	if attr.Mode != nil && *attr.Mode != m.Mode {
		m.Mode = *attr.Mode &^ vfs.ModeDir
		changed = true
	}
	if attr.ModTime != nil && *attr.ModTime != m.ModTime {
		m.ModTime = *attr.ModTime
		changed = true
	}
	if attr.ATime != nil && *attr.ATime != m.ATime {
		m.ATime = *attr.ATime
		changed = true
	}
	if changed {
		m.CTime = now
	}
	return changed
}
