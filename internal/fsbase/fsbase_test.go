package fsbase

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"muxfs/internal/vfs"
)

func TestNamespaceBasics(t *testing.T) {
	ns := NewNamespace()
	if ns.FileCount() != 0 {
		t.Fatal("fresh namespace not empty")
	}
	root, err := ns.Lookup("/")
	if err != nil || !root.IsDir() {
		t.Fatalf("root lookup: %v", err)
	}

	n, err := ns.CreateFile("/a", 0o644)
	if err != nil || n.Ino == 0 || n.IsDir() {
		t.Fatalf("CreateFile: %+v, %v", n, err)
	}
	if _, err := ns.CreateFile("/a", 0o644); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := ns.CreateFile("/", 0o644); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("create at root: %v", err)
	}
	if _, err := ns.CreateFile("/missing/f", 0o644); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("create under missing dir: %v", err)
	}
	if _, err := ns.CreateFile("/a/f", 0o644); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("create under file: %v", err)
	}
	if ns.FileCount() != 1 {
		t.Fatalf("FileCount = %d", ns.FileCount())
	}
}

func TestNamespaceInoAllocation(t *testing.T) {
	ns := NewNamespace()
	a, _ := ns.CreateFile("/a", 0o644)
	b, _ := ns.CreateFile("/b", 0o644)
	if a.Ino == b.Ino {
		t.Fatal("duplicate ino")
	}
	// Recovery-style creation with an explicit high ino bumps the allocator.
	c, err := ns.CreateFileIno("/c", 0o644, 1000)
	if err != nil || c.Ino != 1000 {
		t.Fatalf("CreateFileIno: %+v, %v", c, err)
	}
	d, _ := ns.CreateFile("/d", 0o644)
	if d.Ino <= 1000 {
		t.Fatalf("allocator did not bump past explicit ino: %d", d.Ino)
	}
}

func TestNamespaceRenameSemantics(t *testing.T) {
	ns := NewNamespace()
	ns.Mkdir("/d1", vfs.ModeDir|0o755)
	ns.Mkdir("/d2", vfs.ModeDir|0o755)
	f, _ := ns.CreateFile("/d1/f", 0o644)

	node, err := ns.Rename("/d1/f", "/d2/g")
	if err != nil || node.Ino != f.Ino {
		t.Fatalf("rename: %+v, %v", node, err)
	}
	if _, err := ns.Lookup("/d1/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old name lingers")
	}
	if _, err := ns.Lookup("/d2/g"); err != nil {
		t.Fatal("new name missing")
	}
	// Rename a whole directory; children follow.
	ns.CreateFile("/d2/child", 0o644)
	if _, err := ns.Rename("/d2", "/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Lookup("/renamed/g"); err != nil {
		t.Fatal("child lost in directory rename")
	}
}

func TestWalkOrders(t *testing.T) {
	ns := NewNamespace()
	ns.Mkdir("/b", vfs.ModeDir|0o755)
	ns.Mkdir("/a", vfs.ModeDir|0o755)
	ns.CreateFile("/a/z", 0o644)
	ns.CreateFile("/a/y", 0o644)
	ns.CreateFile("/top", 0o644)

	var all []string
	ns.WalkAll(func(path string, node *Node) { all = append(all, path) })
	want := []string{"/a", "/a/y", "/a/z", "/b", "/top"}
	if fmt.Sprint(all) != fmt.Sprint(want) {
		t.Fatalf("WalkAll = %v, want %v", all, want)
	}

	var files []string
	ns.WalkFiles(func(path string, node *Node) { files = append(files, path) })
	wantFiles := []string{"/a/y", "/a/z", "/top"}
	if fmt.Sprint(files) != fmt.Sprint(wantFiles) {
		t.Fatalf("WalkFiles = %v, want %v", files, wantFiles)
	}
}

func TestMetaApply(t *testing.T) {
	m := Meta{Size: 100, Mode: 0o644, ModTime: 1, ATime: 2, CTime: 3}
	now := 50 * time.Nanosecond

	// Empty attr: no change, ctime untouched.
	if m.Apply(vfs.SetAttr{}, now) {
		t.Fatal("empty SetAttr reported change")
	}
	if m.CTime != 3 {
		t.Fatal("ctime bumped without change")
	}

	size := int64(200)
	mode := vfs.FileMode(0o600)
	if !m.Apply(vfs.SetAttr{Size: &size, Mode: &mode}, now) {
		t.Fatal("change not reported")
	}
	if m.Size != 200 || m.Mode != 0o600 || m.CTime != now {
		t.Fatalf("apply result: %+v", m)
	}

	// Dir bit cannot be smuggled in through SetAttr.
	dirMode := vfs.ModeDir | 0o777
	m.Apply(vfs.SetAttr{Mode: &dirMode}, now)
	if m.Mode.IsDir() {
		t.Fatal("SetAttr turned a file into a directory")
	}

	// Same values again: no change.
	if m.Apply(vfs.SetAttr{Size: &size}, now+1) {
		t.Fatal("idempotent SetAttr reported change")
	}
}

func TestMetaInfo(t *testing.T) {
	m := Meta{Size: 10, Blocks: 4096, Mode: 0o644, ModTime: 5, ATime: 6, CTime: 7}
	fi := m.Info("/p")
	if fi.Path != "/p" || fi.Size != 10 || fi.Blocks != 4096 || fi.ModTime != 5 {
		t.Fatalf("Info = %+v", fi)
	}
}
