// Package fsbase holds the pieces every native file system shares: the
// in-memory namespace (directory tree), inode metadata, and ID allocation.
// The three native file systems differ in how they place, index, journal,
// and cache *data*; name resolution is deliberately common code.
package fsbase

import (
	"sort"

	"muxfs/internal/vfs"
)

// Node is one dentry in the namespace tree. Directories carry Children;
// regular files carry only the inode number that the owning file system maps
// to its data structures.
type Node struct {
	Ino      uint64
	Mode     vfs.FileMode
	Children map[string]*Node // non-nil iff directory
}

// IsDir reports whether the node is a directory.
func (n *Node) IsDir() bool { return n.Children != nil }

// Namespace is a rooted directory tree. It is not internally synchronized;
// the owning file system serializes access under its own lock.
type Namespace struct {
	root    *Node
	nextIno uint64
	count   int64 // live files + directories, excluding root
}

// NewNamespace returns a namespace with an empty root directory.
func NewNamespace() *Namespace {
	return &Namespace{
		root:    &Node{Ino: 1, Mode: vfs.ModeDir | 0o755, Children: map[string]*Node{}},
		nextIno: 2,
	}
}

// NextIno reserves and returns a fresh inode number.
func (ns *Namespace) NextIno() uint64 {
	ino := ns.nextIno
	ns.nextIno++
	return ino
}

// BumpIno raises the inode allocator above ino (used during recovery replay
// so re-created inodes keep their logged numbers).
func (ns *Namespace) BumpIno(ino uint64) {
	if ino >= ns.nextIno {
		ns.nextIno = ino + 1
	}
}

// FileCount returns the number of live entries (files + dirs, sans root).
func (ns *Namespace) FileCount() int64 { return ns.count }

// Lookup resolves path to a node.
func (ns *Namespace) Lookup(path string) (*Node, error) {
	node := ns.root
	for _, seg := range vfs.SplitPath(path) {
		if !node.IsDir() {
			return nil, vfs.ErrNotDir
		}
		child, ok := node.Children[seg]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		node = child
	}
	return node, nil
}

// lookupParent resolves the parent directory of path and the final name.
func (ns *Namespace) lookupParent(path string) (*Node, string, error) {
	dir, name := vfs.ParentPath(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid // operations on the root
	}
	parent, err := ns.Lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.IsDir() {
		return nil, "", vfs.ErrNotDir
	}
	return parent, name, nil
}

// CreateFile inserts a new regular file node with a fresh inode number.
func (ns *Namespace) CreateFile(path string, mode vfs.FileMode) (*Node, error) {
	return ns.insert(path, mode&^vfs.ModeDir, 0)
}

// CreateFileIno inserts a regular file with a specific inode number
// (recovery replay).
func (ns *Namespace) CreateFileIno(path string, mode vfs.FileMode, ino uint64) (*Node, error) {
	return ns.insert(path, mode&^vfs.ModeDir, ino)
}

// Mkdir inserts a new directory node.
func (ns *Namespace) Mkdir(path string, mode vfs.FileMode) (*Node, error) {
	return ns.insert(path, mode|vfs.ModeDir, 0)
}

func (ns *Namespace) insert(path string, mode vfs.FileMode, ino uint64) (*Node, error) {
	parent, name, err := ns.lookupParent(path)
	if err != nil {
		return nil, err
	}
	if _, exists := parent.Children[name]; exists {
		return nil, vfs.ErrExist
	}
	if ino == 0 {
		ino = ns.NextIno()
	} else {
		ns.BumpIno(ino)
	}
	node := &Node{Ino: ino, Mode: mode}
	if mode.IsDir() {
		node.Children = map[string]*Node{}
	}
	parent.Children[name] = node
	ns.count++
	return node, nil
}

// Remove deletes a file or empty directory and returns the removed node.
func (ns *Namespace) Remove(path string) (*Node, error) {
	parent, name, err := ns.lookupParent(path)
	if err != nil {
		return nil, err
	}
	node, ok := parent.Children[name]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	if node.IsDir() && len(node.Children) > 0 {
		return nil, vfs.ErrNotEmpty
	}
	delete(parent.Children, name)
	ns.count--
	return node, nil
}

// Rename moves oldPath to newPath. The destination must not exist.
func (ns *Namespace) Rename(oldPath, newPath string) (*Node, error) {
	oldParent, oldName, err := ns.lookupParent(oldPath)
	if err != nil {
		return nil, err
	}
	node, ok := oldParent.Children[oldName]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	newParent, newName, err := ns.lookupParent(newPath)
	if err != nil {
		return nil, err
	}
	if _, exists := newParent.Children[newName]; exists {
		return nil, vfs.ErrExist
	}
	delete(oldParent.Children, oldName)
	newParent.Children[newName] = node
	return node, nil
}

// ReadDir lists path's entries in lexical order.
func (ns *Namespace) ReadDir(path string) ([]vfs.DirEntry, error) {
	node, err := ns.Lookup(path)
	if err != nil {
		return nil, err
	}
	if !node.IsDir() {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEntry, 0, len(node.Children))
	for name, child := range node.Children {
		out = append(out, vfs.DirEntry{Name: name, IsDir: child.IsDir()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// WalkAll visits every entry (directories before their children), in
// lexical order, as (path, node). Log compaction uses it to re-log the
// namespace in a replayable order.
func (ns *Namespace) WalkAll(fn func(path string, node *Node)) {
	var walk func(prefix string, n *Node)
	walk = func(prefix string, n *Node) {
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := n.Children[name]
			p := prefix + "/" + name
			fn(p, child)
			if child.IsDir() {
				walk(p, child)
			}
		}
	}
	walk("", ns.root)
}

// WalkFiles visits every regular file as (path, node), depth-first in
// lexical order. Recovery and Statfs use it.
func (ns *Namespace) WalkFiles(fn func(path string, node *Node)) {
	var walk func(prefix string, n *Node)
	walk = func(prefix string, n *Node) {
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := n.Children[name]
			p := prefix + "/" + name
			if child.IsDir() {
				walk(p, child)
			} else {
				fn(p, child)
			}
		}
	}
	walk("", ns.root)
}
