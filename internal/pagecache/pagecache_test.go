package pagecache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"muxfs/internal/simclock"
)

func newTestCache(capacity int) (*Cache, *simclock.Clock) {
	clk := simclock.New()
	return New(capacity, clk, 100*time.Nanosecond), clk
}

func TestGetMissThenHit(t *testing.T) {
	c, clk := newTestCache(4)
	k := Key{File: 1, Page: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("hello"), false)
	before := clk.Now()
	data, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(data[:5], []byte("hello")) {
		t.Fatalf("data = %q", data[:5])
	}
	if clk.Now()-before != 100*time.Nanosecond {
		t.Fatalf("hit cost not charged: %v", clk.Now()-before)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutZeroExtendsShortPage(t *testing.T) {
	c, _ := newTestCache(4)
	k := Key{File: 1, Page: 0}
	c.Put(k, []byte("abc"), false)
	data, _ := c.Get(k)
	if len(data) != PageSize {
		t.Fatalf("page len = %d", len(data))
	}
	if data[3] != 0 || data[PageSize-1] != 0 {
		t.Fatal("short page not zero-extended")
	}
	// Replacing with shorter data must clear the tail.
	full := bytes.Repeat([]byte{0xEE}, PageSize)
	c.Put(k, full, false)
	c.Put(k, []byte("xy"), false)
	data, _ = c.Get(k)
	if data[0] != 'x' || data[2] != 0 || data[100] != 0 {
		t.Fatal("replacement did not clear stale bytes")
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := newTestCache(2)
	k1, k2, k3 := Key{1, 0}, Key{1, 1}, Key{1, 2}
	c.Put(k1, []byte("1"), false)
	c.Put(k2, []byte("2"), false)
	c.Get(k1) // k1 now more recent than k2
	ev, evicted := c.Put(k3, []byte("3"), false)
	if !evicted || ev.Key != k2 {
		t.Fatalf("evicted = %v %+v, want k2", evicted, ev.Key)
	}
	if !c.Contains(k1) || c.Contains(k2) || !c.Contains(k3) {
		t.Fatal("wrong residency after eviction")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestEvictionReturnsDirtyData(t *testing.T) {
	c, _ := newTestCache(1)
	k1, k2 := Key{1, 0}, Key{1, 1}
	c.Put(k1, []byte("dirty!"), true)
	ev, evicted := c.Put(k2, []byte("x"), false)
	if !evicted || !ev.Dirty {
		t.Fatalf("dirty eviction lost: %+v", ev)
	}
	if !bytes.Equal(ev.Data[:6], []byte("dirty!")) {
		t.Fatalf("evicted data = %q", ev.Data[:6])
	}
}

func TestPutReplaceKeepsDirty(t *testing.T) {
	c, _ := newTestCache(4)
	k := Key{1, 0}
	c.Put(k, []byte("a"), true)
	c.Put(k, []byte("b"), false) // replace with clean data must keep dirty
	var flushed int
	c.FlushFile(1, func(Key, []byte) error { flushed++; return nil })
	if flushed != 1 {
		t.Fatalf("dirty bit lost on replace: flushed %d", flushed)
	}
}

func TestMarkDirtyAndFlushFile(t *testing.T) {
	c, _ := newTestCache(8)
	c.Put(Key{1, 0}, []byte("a"), false)
	c.Put(Key{1, 1}, []byte("b"), false)
	c.Put(Key{2, 0}, []byte("c"), false)
	c.MarkDirty(Key{1, 0})
	c.MarkDirty(Key{2, 0})
	c.MarkDirty(Key{9, 9}) // not resident: no-op

	var flushedPages []Key
	err := c.FlushFile(1, func(k Key, data []byte) error {
		flushedPages = append(flushedPages, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flushedPages) != 1 || flushedPages[0] != (Key{1, 0}) {
		t.Fatalf("flushed = %v", flushedPages)
	}
	// Second flush: nothing dirty for file 1.
	flushedPages = nil
	c.FlushFile(1, func(k Key, data []byte) error {
		flushedPages = append(flushedPages, k)
		return nil
	})
	if len(flushedPages) != 0 {
		t.Fatalf("pages flushed twice: %v", flushedPages)
	}
}

func TestFlushAll(t *testing.T) {
	c, _ := newTestCache(8)
	c.Put(Key{1, 0}, []byte("a"), true)
	c.Put(Key{2, 0}, []byte("b"), true)
	c.Put(Key{3, 0}, []byte("c"), false)
	var n int
	if err := c.FlushAll(func(Key, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("flushed %d pages, want 2", n)
	}
}

func TestFlushErrorStopsAndKeepsDirty(t *testing.T) {
	c, _ := newTestCache(8)
	c.Put(Key{1, 0}, []byte("a"), true)
	boom := errors.New("disk gone")
	if err := c.FlushFile(1, func(Key, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Page must remain dirty for a retry.
	var n int
	c.FlushFile(1, func(Key, []byte) error { n++; return nil })
	if n != 1 {
		t.Fatal("dirty bit cleared despite failed writeback")
	}
}

func TestInvalidateFile(t *testing.T) {
	c, _ := newTestCache(8)
	c.Put(Key{1, 0}, []byte("a"), true)
	c.Put(Key{2, 0}, []byte("b"), false)
	c.InvalidateFile(1)
	if c.Contains(Key{1, 0}) {
		t.Fatal("file 1 survived invalidation")
	}
	if !c.Contains(Key{2, 0}) {
		t.Fatal("file 2 wrongly invalidated")
	}
}

func TestInvalidateRange(t *testing.T) {
	c, _ := newTestCache(16)
	for pg := int64(0); pg < 8; pg++ {
		c.Put(Key{1, pg}, []byte{byte(pg)}, false)
	}
	// Invalidate bytes [PageSize+1, 3*PageSize): pages 1 and 2.
	c.InvalidateRange(1, PageSize+1, 2*PageSize-1)
	for pg := int64(0); pg < 8; pg++ {
		want := pg != 1 && pg != 2
		if got := c.Contains(Key{1, pg}); got != want {
			t.Fatalf("page %d residency = %v, want %v", pg, got, want)
		}
	}
	c.InvalidateRange(1, 0, 0) // no-op
}

func TestInvalidateAll(t *testing.T) {
	c, _ := newTestCache(8)
	c.Put(Key{1, 0}, []byte("a"), true)
	c.InvalidateAll()
	if c.Stats().Pages != 0 {
		t.Fatal("InvalidateAll left pages")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := newTestCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{File: uint64(w), Page: int64(i % 16)}
				c.Put(k, []byte(fmt.Sprintf("%d-%d", w, i)), i%2 == 0)
				c.Get(k)
				if i%10 == 0 {
					c.FlushFile(uint64(w), func(Key, []byte) error { return nil })
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Stats().Pages > 64 {
		t.Fatalf("cache over capacity: %d", c.Stats().Pages)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New(0, simclock.New(), 0)
	c.Put(Key{1, 0}, []byte("a"), false)
	if !c.Contains(Key{1, 0}) {
		t.Fatal("capacity floor of 1 page not applied")
	}
}
