// Package pagecache implements the per-file-system DRAM page cache used by
// xfslite and extlite.
//
// The paper's §2.5 observation — each native file system keeps its own DRAM
// page cache that cannot be shared across devices — is modeled directly:
// every FS instance owns a Cache. Cache hits charge DRAM-class cost to the
// virtual clock, which is what produces the paper's §3.2 result shape where
// Mux's fixed indirection cost is large *relative* to a cache-hit read and
// negligible relative to an HDD access.
package pagecache

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"muxfs/internal/simclock"
)

// PageSize is the caching granule.
const PageSize = 4096

// Key identifies a cached page.
type Key struct {
	File uint64 // FS-assigned file (inode) ID
	Page int64  // page index within the file
}

// Evicted describes a page pushed out by Put; the owner must write dirty
// evictions back to the device.
type Evicted struct {
	Key   Key
	Data  []byte
	Dirty bool
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Pages     int
}

type page struct {
	key   Key
	data  []byte
	dirty bool
}

// Cache is a fixed-capacity LRU page cache. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int // max pages
	clk      *simclock.Clock
	hitCost  time.Duration // DRAM access cost charged on hit

	lru   *list.List // front = most recent; values are *page
	pages map[Key]*list.Element

	hits, misses, evictions int64
}

// New creates a cache holding capacityPages pages. Hits charge hitCost to
// clk (pass the DRAM profile's access latency).
func New(capacityPages int, clk *simclock.Clock, hitCost time.Duration) *Cache {
	if capacityPages < 1 {
		capacityPages = 1
	}
	return &Cache{
		capacity: capacityPages,
		clk:      clk,
		hitCost:  hitCost,
		lru:      list.New(),
		pages:    make(map[Key]*list.Element),
	}
}

// Get returns the cached page data for k, or (nil, false) on miss. The
// returned slice is the cache's own page; callers may read and, for write
// hits combined with MarkDirty, update it in place under the FS's file lock.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.pages[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.clk.Advance(c.hitCost)
	c.lru.MoveToFront(el)
	return el.Value.(*page).data, true
}

// Contains reports whether k is cached without touching LRU order or stats.
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.pages[k]
	return ok
}

// Put inserts (or replaces) page k with data, which must be PageSize bytes
// or shorter (short pages are zero-extended). It returns any evicted page so
// the caller can write dirty contents back to the device.
func (c *Cache) Put(k Key, data []byte, dirty bool) (ev Evicted, evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clk.Advance(c.hitCost) // DRAM copy-in cost

	if el, ok := c.pages[k]; ok {
		p := el.Value.(*page)
		copy(p.data, data)
		for i := len(data); i < PageSize; i++ {
			p.data[i] = 0
		}
		p.dirty = p.dirty || dirty
		c.lru.MoveToFront(el)
		return Evicted{}, false
	}

	buf := make([]byte, PageSize)
	copy(buf, data)
	p := &page{key: k, data: buf, dirty: dirty}
	c.pages[k] = c.lru.PushFront(p)

	if c.lru.Len() <= c.capacity {
		return Evicted{}, false
	}
	tail := c.lru.Back()
	victim := tail.Value.(*page)
	c.lru.Remove(tail)
	delete(c.pages, victim.key)
	c.evictions++
	return Evicted{Key: victim.key, Data: victim.data, Dirty: victim.dirty}, true
}

// MarkDirty flags a cached page dirty (after an in-place write hit).
// It is a no-op if the page is not resident.
func (c *Cache) MarkDirty(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.pages[k]; ok {
		el.Value.(*page).dirty = true
	}
}

// FlushFile calls write for every dirty page of file, in unspecified order,
// and marks pages clean as write succeeds. It stops at the first error.
func (c *Cache) FlushFile(file uint64, write func(Key, []byte) error) error {
	c.mu.Lock()
	var dirty []*page
	for _, el := range c.pages {
		p := el.Value.(*page)
		if p.key.File == file && p.dirty {
			dirty = append(dirty, p)
		}
	}
	c.mu.Unlock()

	for _, p := range dirty {
		if err := write(p.key, p.data); err != nil {
			return err
		}
		c.mu.Lock()
		p.dirty = false
		c.mu.Unlock()
	}
	return nil
}

// FlushAll flushes every dirty page in the cache.
func (c *Cache) FlushAll(write func(Key, []byte) error) error {
	c.mu.Lock()
	var dirty []*page
	for _, el := range c.pages {
		p := el.Value.(*page)
		if p.dirty {
			dirty = append(dirty, p)
		}
	}
	c.mu.Unlock()
	for _, p := range dirty {
		if err := write(p.key, p.data); err != nil {
			return err
		}
		c.mu.Lock()
		p.dirty = false
		c.mu.Unlock()
	}
	return nil
}

// DirtyPages returns the keys of all dirty pages — of one file, or of every
// file when all is true — sorted by (file, page). Write-back uses the
// sorted order so device writes sequentialize (the elevator effect).
func (c *Cache) DirtyPages(file uint64, all bool) []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Key
	for k, el := range c.pages {
		if el.Value.(*page).dirty && (all || k.File == file) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Page < out[j].Page
	})
	return out
}

// Peek returns the page data for k without touching LRU order, hit/miss
// stats, or clock costs. Write-back paths use it.
func (c *Cache) Peek(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.pages[k]; ok {
		return el.Value.(*page).data, true
	}
	return nil, false
}

// MarkClean clears the dirty flag after a successful write-back.
func (c *Cache) MarkClean(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.pages[k]; ok {
		el.Value.(*page).dirty = false
	}
}

// DirtyCount returns the number of dirty resident pages.
func (c *Cache) DirtyCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, el := range c.pages {
		if el.Value.(*page).dirty {
			n++
		}
	}
	return n
}

// InvalidateFile drops every page of file (truncate, remove, or migration
// moved the blocks away).
func (c *Cache) InvalidateFile(file uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, el := range c.pages {
		if k.File == file {
			c.lru.Remove(el)
			delete(c.pages, k)
		}
	}
}

// InvalidateRange drops cached pages of file overlapping [off, off+n).
func (c *Cache) InvalidateRange(file uint64, off, n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for pg := first; pg <= last; pg++ {
		k := Key{File: file, Page: pg}
		if el, ok := c.pages[k]; ok {
			c.lru.Remove(el)
			delete(c.pages, k)
		}
	}
}

// InvalidateAll empties the cache (simulated DRAM loss on crash).
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.pages = make(map[Key]*list.Element)
}

// Stats returns a snapshot of hit/miss/eviction counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Pages: c.lru.Len()}
}
