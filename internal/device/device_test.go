package device

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"muxfs/internal/simclock"
)

func newTestDev(t *testing.T, prof Profile) (*Device, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	return New(prof, clk), clk
}

func TestReadUnwrittenIsZero(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	buf := make([]byte, 8192)
	for i := range buf {
		buf[i] = 0xff
	}
	n, err := d.ReadAt(buf, 12345)
	if err != nil || n != len(buf) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d, _ := newTestDev(t, PMProfile("pm0"))
	data := []byte("tiered storage talks to file systems")
	// Cross a page boundary on purpose.
	off := int64(pageSize - 7)
	if _, err := d.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q != %q", got, data)
	}
}

func TestOutOfRange(t *testing.T) {
	prof := PMProfile("pm0")
	prof.Capacity = 1 << 20
	d, _ := newTestDev(t, prof)
	buf := make([]byte, 16)
	if _, err := d.WriteAt(buf, prof.Capacity-8); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.ReadAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative offset: err = %v, want ErrOutOfRange", err)
	}
}

func TestZeroLengthTransfer(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	if _, err := d.ReadAt(nil, 0); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("nil read err = %v", err)
	}
	if _, err := d.WriteAt(nil, 0); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("nil write err = %v", err)
	}
}

func TestCostChargedToClock(t *testing.T) {
	d, clk := newTestDev(t, SSDProfile("ssd0"))
	before := clk.Now()
	buf := make([]byte, 4096)
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	cost := clk.Now() - before
	p := d.Profile()
	wantMin := p.WriteLatency // at least the fixed latency
	if cost < wantMin {
		t.Fatalf("write cost %v < fixed latency %v", cost, wantMin)
	}
	// Bandwidth term: 4096 bytes at WriteBandwidth.
	bwTerm := time.Duration(4096 * int64(time.Second) / p.WriteBandwidth)
	if cost < p.WriteLatency+bwTerm/2 {
		t.Fatalf("write cost %v missing bandwidth term (~%v)", cost, bwTerm)
	}
}

func TestSeekPenaltyOnlyWhenRandom(t *testing.T) {
	d, clk := newTestDev(t, HDDProfile("hdd0"))
	buf := make([]byte, 4096)

	// First access always seeks (lastEnd starts at 0; off 1 MiB != 0).
	w := simclock.StartWatch(clk)
	d.ReadAt(buf, 1<<20)
	randomCost := w.Elapsed()

	// Sequential follow-up must not pay the seek.
	w.Restart()
	d.ReadAt(buf, 1<<20+4096)
	seqCost := w.Elapsed()

	if randomCost < d.Profile().SeekSettle {
		t.Fatalf("random access cost %v did not include seek settle %v", randomCost, d.Profile().SeekSettle)
	}
	if seqCost >= d.Profile().SeekSettle {
		t.Fatalf("sequential access cost %v paid a seek", seqCost)
	}
	// Distance sensitivity: a full-stroke seek costs more than a short one.
	w.Restart()
	d.ReadAt(buf, d.Capacity()-4096)
	farCost := w.Elapsed()
	w.Restart()
	d.ReadAt(buf, d.Capacity()-3*4096)
	nearCost := w.Elapsed()
	if farCost <= nearCost {
		t.Fatalf("long seek %v not costlier than short seek %v", farCost, nearCost)
	}
}

func TestBlockDeviceRoundsUpToBlocks(t *testing.T) {
	d, clk := newTestDev(t, SSDProfile("ssd0"))
	w := simclock.StartWatch(clk)
	one := []byte{1}
	d.ReadAt(one, 100) // 1 byte still moves a whole 4 KiB block
	oneCost := w.Elapsed()
	w.Restart()
	buf := make([]byte, 4096)
	d.ReadAt(buf, 0)
	blockCost := w.Elapsed()
	if oneCost < blockCost-blockCost/10 {
		t.Fatalf("1-byte read cost %v much cheaper than block read %v; should round up", oneCost, blockCost)
	}
}

func TestByteAddressableNoRounding(t *testing.T) {
	d, clk := newTestDev(t, PMProfile("pm0"))
	w := simclock.StartWatch(clk)
	one := []byte{1}
	d.ReadAt(one, 100)
	oneCost := w.Elapsed()
	w.Restart()
	big := make([]byte, 1<<20)
	d.ReadAt(big, 0)
	bigCost := w.Elapsed()
	if oneCost*10 > bigCost {
		t.Fatalf("PM 1-byte read %v not much cheaper than 1 MiB read %v", oneCost, bigCost)
	}
}

func TestCrashRevertsUnpersisted(t *testing.T) {
	d, _ := newTestDev(t, PMProfile("pm0"))
	d.WriteAt([]byte("durable!"), 0)
	if err := d.Persist(0, 8); err != nil {
		t.Fatal(err)
	}
	d.WriteAt([]byte("volatile"), 0)
	d.WriteAt([]byte("lost"), 9000)
	d.Crash()

	got := make([]byte, 8)
	d.ReadAt(got, 0)
	if string(got) != "durable!" {
		t.Fatalf("persisted data corrupted after crash: %q", got)
	}
	got4 := make([]byte, 4)
	d.ReadAt(got4, 9000)
	if !bytes.Equal(got4, []byte{0, 0, 0, 0}) {
		t.Fatalf("unpersisted write survived crash: %q", got4)
	}
}

func TestCrashKeepsPersisted(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	payload := bytes.Repeat([]byte{0xAB}, 3*pageSize)
	d.WriteAt(payload, 4096)
	d.PersistAll()
	d.Crash()
	got := make([]byte, len(payload))
	d.ReadAt(got, 4096)
	if !bytes.Equal(got, payload) {
		t.Fatal("PersistAll'd data lost on crash")
	}
}

func TestDRAMCrashLosesEverything(t *testing.T) {
	d, _ := newTestDev(t, DRAMProfile("dram0"))
	d.WriteAt([]byte("cache"), 0)
	d.PersistAll() // meaningless on DRAM; crash still clears
	d.Crash()
	got := make([]byte, 5)
	d.ReadAt(got, 0)
	if !bytes.Equal(got, make([]byte, 5)) {
		t.Fatalf("DRAM survived crash: %q", got)
	}
}

func TestDiscard(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	payload := bytes.Repeat([]byte{0xCD}, 2*pageSize)
	d.WriteAt(payload, 0)
	// Discard the middle, straddling both pages partially.
	d.Discard(pageSize-100, 200)
	got := make([]byte, 2*pageSize)
	d.ReadAt(got, 0)
	for i := 0; i < pageSize-100; i++ {
		if got[i] != 0xCD {
			t.Fatalf("byte %d clobbered by discard", i)
		}
	}
	for i := pageSize - 100; i < pageSize+100; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not discarded", i)
		}
	}
	for i := pageSize + 100; i < 2*pageSize; i++ {
		if got[i] != 0xCD {
			t.Fatalf("byte %d clobbered by discard", i)
		}
	}
}

func TestStats(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	buf := make([]byte, 8192)
	d.WriteAt(buf, 0)
	d.ReadAt(buf[:4096], 0)
	d.Persist(0, 4096)
	s := d.Stats()
	if s.Writes != 1 || s.BytesWritten != 8192 {
		t.Fatalf("write stats = %+v", s)
	}
	if s.Reads != 1 || s.BytesRead != 4096 {
		t.Fatalf("read stats = %+v", s)
	}
	if s.Persists != 1 {
		t.Fatalf("persist stats = %+v", s)
	}
	if s.BusyTime <= 0 {
		t.Fatalf("busy time not accounted: %+v", s)
	}
	prev := s
	d.WriteAt(buf[:100], 0)
	delta := d.Stats().Sub(prev)
	if delta.Writes != 1 || delta.BytesWritten != 100 {
		t.Fatalf("Sub delta = %+v", delta)
	}
	d.ResetStats()
	if got := d.Stats(); got.Writes != 0 || got.BusyTime != 0 {
		t.Fatalf("ResetStats left %+v", got)
	}
}

func TestInjectFailure(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	d.InjectFailure(true)
	buf := make([]byte, 16)
	if _, err := d.WriteAt(buf, 0); err == nil {
		t.Fatal("write succeeded under injected failure")
	}
	if _, err := d.ReadAt(buf, 0); err == nil {
		t.Fatal("read succeeded under injected failure")
	}
	if err := d.Persist(0, 16); err == nil {
		t.Fatal("persist succeeded under injected failure")
	}
	d.InjectFailure(false)
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("write failed after clearing injection: %v", err)
	}
}

func TestProfileClassString(t *testing.T) {
	cases := map[Class]string{PM: "PM", SSD: "SSD", HDD: "HDD", DRAM: "DRAM", Class(99): "unknown"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	// The same seed and op sequence must produce the same fault sequence.
	run := func() []bool {
		d, _ := newTestDev(t, SSDProfile("ssd0"))
		d.InjectFaults(FaultPlan{Seed: 42, ReadErrProb: 0.3})
		buf := make([]byte, 512)
		outcomes := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			_, err := d.ReadAt(buf, int64(i)*4096)
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at op %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("faults = %d/%d, want a partial failure pattern", faults, len(a))
	}
}

func TestFaultPlanTransientVsSticky(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	buf := make([]byte, 512)

	// Transient: every op rolls independently; the device never latches.
	d.InjectFaults(FaultPlan{Seed: 1, WriteErrProb: 0.5})
	sawErr, sawOK := false, false
	for i := 0; i < 64; i++ {
		_, err := d.WriteAt(buf, 0)
		if err != nil {
			sawErr = true
			if !IsTransient(err) || !IsFault(err) {
				t.Fatalf("transient fault misclassified: %v", err)
			}
		} else {
			sawOK = true
		}
	}
	if !sawErr || !sawOK {
		t.Fatalf("transient plan: sawErr=%v sawOK=%v, want both", sawErr, sawOK)
	}

	// Sticky: the first fault latches the device hard-failed.
	d.InjectFaults(FaultPlan{Seed: 1, WriteErrProb: 1, Sticky: true})
	_, err := d.WriteAt(buf, 0)
	if !IsFault(err) || IsTransient(err) {
		t.Fatalf("sticky fault misclassified: %v", err)
	}
	d.InjectFaults(FaultPlan{}) // disarm the plan; the latch must remain
	if _, err := d.ReadAt(buf, 0); !IsFault(err) {
		t.Fatalf("sticky latch did not persist: %v", err)
	}
	d.ClearFaults()
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("ClearFaults did not restore service: %v", err)
	}
}

func TestFaultPlanLatencySpikes(t *testing.T) {
	d, clk := newTestDev(t, SSDProfile("ssd0"))
	buf := make([]byte, 512)
	base := func() time.Duration {
		start := clk.Now()
		if _, err := d.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		return clk.Now() - start
	}()
	d.InjectFaults(FaultPlan{Seed: 7, LatencyProb: 1, LatencySpike: time.Millisecond})
	start := clk.Now()
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now() - start; got < base+time.Millisecond {
		t.Fatalf("spiked read cost %v, want >= %v", got, base+time.Millisecond)
	}
	if s := d.Stats(); s.LatencySpikes == 0 || s.SpikeTime < time.Millisecond {
		t.Fatalf("spike stats not recorded: %+v", s)
	}
}

func TestInjectFailureWrapsSentinel(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	d.InjectFailure(true)
	if _, err := d.ReadAt(make([]byte, 8), 0); !IsFault(err) || IsTransient(err) {
		t.Fatalf("InjectFailure error misclassified: %v", err)
	}
}

func TestFaultStatsCounted(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	d.InjectFaults(FaultPlan{Seed: 9, ReadErrProb: 1})
	buf := make([]byte, 8)
	for i := 0; i < 5; i++ {
		d.ReadAt(buf, 0)
	}
	if s := d.Stats(); s.Faults != 5 {
		t.Fatalf("Faults = %d, want 5", s.Faults)
	}
}
