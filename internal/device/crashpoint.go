package device

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrCrashPoint reports that a deterministic crash point tripped: the
// operation (and every later durability-changing operation on any device
// sharing the CrashPoint) did not happen. It is deliberately not an
// injected *fault* (IsFault returns false): retry loops must not absorb it,
// because a crashed machine does not come back until remount.
var ErrCrashPoint = errors.New("device: crash point reached")

// CrashPoint is a deterministic crash injector shared by every device of a
// stack. It counts durability steps — the individual page flushes performed
// by Persist/PersistAll, the only moments durable state changes — and, once
// armed with a limit, fails the step whose index reaches the limit and
// latches: all later durability steps and writes on the attached devices
// fail with ErrCrashPoint until the stack is crashed and remounted.
//
// Because step counting is per durable page, arming the sweep at every
// index in [0, Steps()) visits every distinct durable state a power loss
// could freeze, including *torn* flushes: a Persist spanning k dirty pages
// that trips after j of them leaves a prefix of the range durable, exactly
// like a drive dying mid-FLUSH. Runs are deterministic as long as the
// workload issues device operations in a deterministic order (the sweep
// drivers are single-threaded under the virtual clock), so a count run
// followed by one armed run per index replays identical sequences.
type CrashPoint struct {
	mu      sync.Mutex
	steps   int64 // durability steps allowed so far
	limit   int64 // step index that trips; <0 = counting only
	tripped bool
}

// NewCrashPoint returns a counting-only injector (no limit armed). Attach
// it to every device of the stack with Device.SetCrashPoint.
func NewCrashPoint() *CrashPoint {
	return &CrashPoint{limit: -1}
}

// Arm sets the crash point: the durability step whose zero-based index
// equals limit fails, and the injector latches. Arming also clears a prior
// trip latch and resets the step counter, so each sweep iteration can
// re-arm a fresh index on a fresh stack.
func (c *CrashPoint) Arm(limit int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = limit
	c.steps = 0
	c.tripped = false
}

// Disarm returns the injector to counting-only mode and releases the trip
// latch; the step counter keeps running.
func (c *CrashPoint) Disarm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = -1
	c.tripped = false
}

// Reset zeroes the step counter and releases the latch, keeping the
// injector in counting-only mode.
func (c *CrashPoint) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = -1
	c.steps = 0
	c.tripped = false
}

// Steps reports the durability steps allowed since the last Arm/Reset.
func (c *CrashPoint) Steps() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// Tripped reports whether the armed crash point has fired.
func (c *CrashPoint) Tripped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// step consumes one durability step. It returns false — and latches — when
// the armed limit is reached; once latched every call returns false.
func (c *CrashPoint) step() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return false
	}
	if c.limit >= 0 && c.steps >= c.limit {
		c.tripped = true
		return false
	}
	c.steps++
	return true
}

// blocked reports whether the injector has latched (writes on attached
// devices fail fast after the crash point instead of continuing work whose
// durable effects could never land).
func (c *CrashPoint) blocked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// SetCrashPoint attaches the injector (nil detaches). One CrashPoint is
// shared by all devices of a stack so the sweep index orders durability
// steps globally, the way one power supply feeds every drive.
func (d *Device) SetCrashPoint(cp *CrashPoint) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cp = cp
}

// crashPointErr builds the per-device trip error. Caller holds d.mu.
func (d *Device) crashPointErr() error {
	return fmt.Errorf("device %s: %w", d.prof.Name, ErrCrashPoint)
}

// persistPages makes the given dirty pages durable one at a time, charging
// one durability step each, in ascending page order so armed runs replay
// the count run exactly. It returns ErrCrashPoint from the first blocked
// step; earlier pages stay durable — a torn flush. Caller holds d.mu.
func (d *Device) persistPages(pages []int64) error {
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		if d.cp != nil && !d.cp.step() {
			return d.crashPointErr()
		}
		delete(d.shadow, pg)
	}
	return nil
}
