package device

import "time"

// Stats accumulates I/O accounting for one device. Benchmarks read these to
// compute per-device throughput and to verify where data actually moved
// (e.g. that Strata's digest path really did double-write via the PM log).
type Stats struct {
	Reads        int64
	Writes       int64
	Persists     int64
	BytesRead    int64
	BytesWritten int64
	// BusyTime is the total virtual time this device spent servicing
	// requests (the device's contribution to the shared clock).
	BusyTime time.Duration
	// Faults counts operations failed by probabilistic fault injection;
	// LatencySpikes counts injected stalls and SpikeTime their total cost.
	Faults        int64
	LatencySpikes int64
	SpikeTime     time.Duration
}

func (s *Stats) addRead(n int64)  { s.Reads++; s.BytesRead += n }
func (s *Stats) addWrite(n int64) { s.Writes++; s.BytesWritten += n }
func (s *Stats) addPersist()      { s.Persists++ }
func (s *Stats) addBusy(ns int64) { s.BusyTime += time.Duration(ns) }
func (s *Stats) addFault()        { s.Faults++ }
func (s *Stats) addSpike(d time.Duration) {
	s.LatencySpikes++
	s.SpikeTime += d
}

func (s *Stats) snapshot() Stats { return *s }

// Sub returns the counter deltas s minus prev; benchmarks use it to isolate
// one phase of a workload.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:         s.Reads - prev.Reads,
		Writes:        s.Writes - prev.Writes,
		Persists:      s.Persists - prev.Persists,
		BytesRead:     s.BytesRead - prev.BytesRead,
		BytesWritten:  s.BytesWritten - prev.BytesWritten,
		BusyTime:      s.BusyTime - prev.BusyTime,
		Faults:        s.Faults - prev.Faults,
		LatencySpikes: s.LatencySpikes - prev.LatencySpikes,
		SpikeTime:     s.SpikeTime - prev.SpikeTime,
	}
}

// simdur converts a nanosecond count to a duration, saturating at zero.
func simdur(ns int64) time.Duration {
	if ns < 0 {
		return 0
	}
	return time.Duration(ns)
}
