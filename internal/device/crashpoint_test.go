package device

import (
	"bytes"
	"errors"
	"testing"
)

// TestCrashPointCountsPersistedPages verifies that durability steps count
// persisted pages, not writes: volatile writes are free, each dirty page
// flushed by Persist/PersistAll costs one step.
func TestCrashPointCountsPersistedPages(t *testing.T) {
	d, _ := newTestDev(t, PMProfile("pm0"))
	cp := NewCrashPoint()
	d.SetCrashPoint(cp)

	buf := make([]byte, 3*pageSize)
	for i := range buf {
		buf[i] = 0xab
	}
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := cp.Steps(); got != 0 {
		t.Fatalf("steps after volatile write = %d, want 0", got)
	}
	if err := d.Persist(0, int64(len(buf))); err != nil {
		t.Fatal(err)
	}
	if got := cp.Steps(); got != 3 {
		t.Fatalf("steps after 3-page persist = %d, want 3", got)
	}
	// Re-persisting clean pages is free.
	if err := d.Persist(0, int64(len(buf))); err != nil {
		t.Fatal(err)
	}
	if got := cp.Steps(); got != 3 {
		t.Fatalf("steps after clean persist = %d, want 3", got)
	}
}

// TestCrashPointTornFlush arms the injector mid-barrier: a persist spanning
// three dirty pages that trips after one must leave exactly the first page
// durable, and every later mutation must fail until remount.
func TestCrashPointTornFlush(t *testing.T) {
	d, _ := newTestDev(t, SSDProfile("ssd0"))
	cp := NewCrashPoint()
	d.SetCrashPoint(cp)

	buf := make([]byte, 3*pageSize)
	for i := range buf {
		buf[i] = 0x5a
	}
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	cp.Arm(1)
	err := d.Persist(0, int64(len(buf)))
	if !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("torn persist err = %v, want ErrCrashPoint", err)
	}
	if !cp.Tripped() {
		t.Fatal("injector did not latch")
	}
	// Latched: writes and barriers fail, reads still work.
	if _, err := d.WriteAt([]byte{1}, 0); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("post-trip write err = %v, want ErrCrashPoint", err)
	}
	if err := d.PersistAll(); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("post-trip PersistAll err = %v, want ErrCrashPoint", err)
	}
	got := make([]byte, pageSize)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("post-trip read err = %v, want nil", err)
	}

	// Power loss: only the page flushed before the trip survives.
	d.Crash()
	cp.Reset()
	full := make([]byte, 3*pageSize)
	if _, err := d.ReadAt(full, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full[:pageSize], buf[:pageSize]) {
		t.Fatal("page persisted before the trip was lost")
	}
	for i := pageSize; i < len(full); i++ {
		if full[i] != 0 {
			t.Fatalf("page %d survived a flush that never completed", i/pageSize)
		}
	}
	// IsFault must NOT match: retry loops may not absorb a crash.
	if IsFault(d.crashPointErrForTest()) {
		t.Fatal("ErrCrashPoint classified as injected fault")
	}
}

func (d *Device) crashPointErrForTest() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashPointErr()
}

// TestCrashPointSharedAcrossDevices checks that one injector orders
// durability steps globally across a multi-device stack.
func TestCrashPointSharedAcrossDevices(t *testing.T) {
	a, _ := newTestDev(t, PMProfile("pm0"))
	b, _ := newTestDev(t, SSDProfile("ssd0"))
	cp := NewCrashPoint()
	a.SetCrashPoint(cp)
	b.SetCrashPoint(cp)

	one := make([]byte, pageSize)
	if _, err := a.WriteAt(one, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt(one, 0); err != nil {
		t.Fatal(err)
	}
	cp.Arm(1)
	if err := a.Persist(0, pageSize); err != nil { // step 0: allowed
		t.Fatalf("first persist: %v", err)
	}
	if err := b.Persist(0, pageSize); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("second persist err = %v, want ErrCrashPoint (shared counter)", err)
	}
}

// TestCrashPointDeterministicPersistAll verifies that PersistAll flushes in
// ascending page order so count runs and armed runs replay identically.
func TestCrashPointDeterministicPersistAll(t *testing.T) {
	mk := func() *Device {
		d, _ := newTestDev(t, PMProfile("pm0"))
		d.SetCrashPoint(NewCrashPoint())
		// Dirty pages in scrambled order; the flush order must not care.
		for _, pg := range []int64{7, 2, 9, 0, 4} {
			if _, err := d.WriteAt([]byte{byte(pg) + 1}, pg*pageSize); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	want := []byte{1, 3, 5, 8, 10} // pages 0,2,4,7,9 after a 3-step torn flush → 0,2,4 durable
	for trial := 0; trial < 8; trial++ {
		d := mk()
		d.cp.Arm(3)
		if err := d.PersistAll(); !errors.Is(err, ErrCrashPoint) {
			t.Fatalf("trial %d: PersistAll err = %v", trial, err)
		}
		d.Crash()
		d.cp.Reset()
		for i, pg := range []int64{0, 2, 4, 7, 9} {
			got := make([]byte, 1)
			if _, err := d.ReadAt(got, pg*pageSize); err != nil {
				t.Fatal(err)
			}
			durable := i < 3
			if durable && got[0] != want[i] {
				t.Fatalf("trial %d: page %d lost (got %d, want %d)", trial, pg, got[0], want[i])
			}
			if !durable && got[0] != 0 {
				t.Fatalf("trial %d: page %d survived past the trip", trial, pg)
			}
		}
	}
}
