// Package device simulates block storage devices with per-class performance
// profiles. All media access charges cost to a shared virtual clock
// (internal/simclock), so the relative speed ratios between persistent
// memory, SSD, and HDD — the quantity that shapes every result in the paper —
// are reproduced deterministically without the actual hardware.
//
// A Device also models volatile write buffering: writes land in a volatile
// state until explicitly persisted (Persist, the CLFLUSH/FLUSH analogue), and
// Crash discards everything un-persisted. File systems built on top use this
// to exercise their crash-consistency machinery under failure injection.
package device

import "time"

// Class identifies the broad device technology tier.
type Class int

const (
	// PM is byte-addressable persistent memory (Intel Optane PMem class).
	PM Class = iota
	// SSD is a low-latency NVMe flash/Optane SSD.
	SSD
	// HDD is a rotational disk with seek penalties.
	HDD
	// DRAM models volatile memory used for page caches and SCM-cache cost
	// accounting; contents do not survive Crash.
	DRAM
)

// String returns the conventional short name of the class.
func (c Class) String() string {
	switch c {
	case PM:
		return "PM"
	case SSD:
		return "SSD"
	case HDD:
		return "HDD"
	case DRAM:
		return "DRAM"
	default:
		return "unknown"
	}
}

// Profile describes the performance characteristics of a simulated device.
// The Mux Policy Runner also consumes Profiles as the "device profiles" the
// paper exposes to user-defined tiering policies.
type Profile struct {
	Name  string // human-readable instance name, e.g. "pmem0"
	Class Class

	// ReadLatency and WriteLatency are fixed per-operation costs charged on
	// every access in addition to the bandwidth term.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// SeekLatency is the full-stroke seek cost; non-sequential accesses
	// are charged SeekSettle plus SeekLatency scaled by seek distance.
	// Only rotational devices set these.
	SeekLatency time.Duration
	// SeekSettle is the minimum cost of any non-sequential access (head
	// settle + rotational delay for short seeks).
	SeekSettle time.Duration

	// ReadBandwidth and WriteBandwidth are sustained transfer rates in
	// bytes per second used for the size-proportional cost term.
	ReadBandwidth  int64
	WriteBandwidth int64

	// PersistLatency is the cost of a persistence barrier (CLFLUSH+fence on
	// PM, FLUSH on block devices).
	PersistLatency time.Duration

	// ByteAddressable devices (PM, DRAM) accept arbitrary offsets without a
	// block-granularity penalty and support DAX-style direct access.
	ByteAddressable bool

	// Capacity is the addressable size in bytes.
	Capacity int64

	// BlockSize is the natural access granule. Cost accounting rounds block
	// device transfers up to whole blocks.
	BlockSize int
}

// Default capacities are simulator-scale: experiments scale workloads down
// with them so runs stay fast while preserving capacity *ratios*.
const (
	DefaultPMCapacity   = 256 << 20 // 256 MiB
	DefaultSSDCapacity  = 1 << 30   // 1 GiB
	DefaultHDDCapacity  = 8 << 30   // 8 GiB
	DefaultDRAMCapacity = 128 << 20 // 128 MiB of page cache
	DefaultBlockSize    = 4096
)

// PMProfile models an Intel Optane PMem 200 class device: sub-microsecond
// access, byte addressability, asymmetric read/write bandwidth.
func PMProfile(name string) Profile {
	return Profile{
		Name:            name,
		Class:           PM,
		ReadLatency:     170 * time.Nanosecond,
		WriteLatency:    90 * time.Nanosecond,
		ReadBandwidth:   8 << 30, // 8 GiB/s
		WriteBandwidth:  3 << 30, // 3 GiB/s
		PersistLatency:  100 * time.Nanosecond,
		ByteAddressable: true,
		Capacity:        DefaultPMCapacity,
		BlockSize:       256, // cache-line-ish persist granule
	}
}

// SSDProfile models an Intel Optane SSD DC P4800X class device.
func SSDProfile(name string) Profile {
	return Profile{
		Name:           name,
		Class:          SSD,
		ReadLatency:    10 * time.Microsecond,
		WriteLatency:   10 * time.Microsecond,
		ReadBandwidth:  2400 << 20, // 2.4 GiB/s
		WriteBandwidth: 2000 << 20, // 2.0 GiB/s
		PersistLatency: 5 * time.Microsecond,
		Capacity:       DefaultSSDCapacity,
		BlockSize:      DefaultBlockSize,
	}
}

// HDDProfile models a Seagate Exos X18 class rotational disk.
func HDDProfile(name string) Profile {
	return Profile{
		Name:           name,
		Class:          HDD,
		ReadLatency:    120 * time.Microsecond, // controller + transfer setup
		WriteLatency:   120 * time.Microsecond,
		SeekLatency:    8 * time.Millisecond, // full stroke
		SeekSettle:     150 * time.Microsecond,
		ReadBandwidth:  260 << 20, // 260 MiB/s sequential
		WriteBandwidth: 260 << 20,
		PersistLatency: 500 * time.Microsecond,
		Capacity:       DefaultHDDCapacity,
		BlockSize:      DefaultBlockSize,
	}
}

// DRAMProfile models main memory used by page caches and the SCM cache
// controller's cost accounting.
func DRAMProfile(name string) Profile {
	return Profile{
		Name:            name,
		Class:           DRAM,
		ReadLatency:     60 * time.Nanosecond,
		WriteLatency:    60 * time.Nanosecond,
		ReadBandwidth:   20 << 30,
		WriteBandwidth:  20 << 30,
		ByteAddressable: true,
		Capacity:        DefaultDRAMCapacity,
		BlockSize:       64,
	}
}
