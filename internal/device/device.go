package device

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"muxfs/internal/simclock"
)

// Errors returned by device operations.
var (
	// ErrOutOfRange reports an access beyond the device capacity.
	ErrOutOfRange = errors.New("device: access out of range")
	// ErrShortBuffer reports an empty or nil transfer buffer.
	ErrShortBuffer = errors.New("device: zero-length transfer")
	// ErrInjectedFault is the base error of every injected device fault.
	// Sticky faults and the all-or-nothing InjectFailure mode wrap it
	// directly; a device returning it is down until service is restored.
	ErrInjectedFault = errors.New("injected fault")
	// ErrTransientFault marks a one-shot injected fault: the device is not
	// latched failed and the next attempt may succeed. It wraps
	// ErrInjectedFault, so errors.Is(err, ErrInjectedFault) matches both.
	ErrTransientFault = fmt.Errorf("%w (transient)", ErrInjectedFault)
)

// IsFault reports whether err originates from fault injection (transient or
// sticky), as opposed to a genuine usage error like ErrOutOfRange.
func IsFault(err error) bool { return errors.Is(err, ErrInjectedFault) }

// IsTransient reports whether err is a transient injected fault — the kind a
// bounded retry may absorb.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientFault) }

// FaultPlan configures probabilistic partial fault injection on a device.
// Unlike InjectFailure's all-or-nothing switch, a plan makes individual
// operations fail (or stall) with the given probabilities, seeded so a
// fault drill replays the exact same fault sequence for a given op order.
type FaultPlan struct {
	// Seed initializes the fault RNG; the same seed and operation sequence
	// reproduce the same faults.
	Seed int64
	// ReadErrProb and WriteErrProb are per-operation error probabilities in
	// [0, 1] for ReadAt and WriteAt respectively.
	ReadErrProb  float64
	WriteErrProb float64
	// LatencyProb is the per-operation probability of a latency spike of
	// LatencySpike charged to the virtual clock (a stalling-but-working
	// device, the gray-failure mode).
	LatencyProb  float64
	LatencySpike time.Duration
	// Sticky latches the device into the hard-failed state on the first
	// injected error (a dying device); otherwise faults are transient and
	// the next operation may succeed (a flaky link or media retry).
	Sticky bool
}

const pageSize = 4096 // internal storage granule, independent of Profile.BlockSize

// Device is a simulated block device. Contents live in sparsely allocated
// in-memory pages. Every access charges its modeled cost to the shared
// virtual clock and updates the device statistics.
//
// Writes are volatile until persisted: Persist makes a byte range durable,
// Crash reverts all un-persisted bytes to their last durable contents. A
// Device is safe for concurrent use.
type Device struct {
	prof Profile
	clk  *simclock.Clock

	mu      sync.Mutex
	pages   map[int64][]byte // pageNo -> 4 KiB page (current contents)
	shadow  map[int64][]byte // pageNo -> durable copy for pages dirtied since last persist; nil entry = page did not exist
	lastEnd int64            // end offset of the previous access, for seek detection
	failed  bool             // set by InjectFailure (or a sticky fault): all ops error
	plan    FaultPlan        // probabilistic fault injection; zero = disabled
	frand   *rand.Rand       // fault RNG, non-nil only while a plan is active
	cp      *CrashPoint      // deterministic crash injection; nil = disabled

	stats Stats
}

// New creates a device with the given profile, charging costs to clk.
func New(prof Profile, clk *simclock.Clock) *Device {
	if prof.BlockSize <= 0 {
		prof.BlockSize = DefaultBlockSize
	}
	return &Device{
		prof:   prof,
		clk:    clk,
		pages:  make(map[int64][]byte),
		shadow: make(map[int64][]byte),
	}
}

// Profile returns the device's performance profile.
func (d *Device) Profile() Profile { return d.prof }

// Clock returns the virtual clock this device charges.
func (d *Device) Clock() *simclock.Clock { return d.clk }

// Capacity returns the addressable size in bytes.
func (d *Device) Capacity() int64 { return d.prof.Capacity }

func (d *Device) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > d.prof.Capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d dev=%s",
			ErrOutOfRange, off, n, d.prof.Capacity, d.prof.Name)
	}
	return nil
}

// ReadAt reads len(p) bytes at off. Unwritten regions read as zeros (the
// device is born zero-filled, like a trimmed SSD).
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, ErrShortBuffer
	}
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, fmt.Errorf("device %s: %w", d.prof.Name, ErrInjectedFault)
	}
	if err := d.faultCheck(false); err != nil {
		return 0, err
	}
	d.charge(off, len(p), false)
	d.copyOut(p, off)
	d.stats.addRead(int64(len(p)))
	return len(p), nil
}

// WriteAt writes len(p) bytes at off. The data is volatile until Persist
// covers it.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, ErrShortBuffer
	}
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, fmt.Errorf("device %s: %w", d.prof.Name, ErrInjectedFault)
	}
	if err := d.faultCheck(true); err != nil {
		return 0, err
	}
	if d.cp != nil && d.cp.blocked() {
		return 0, d.crashPointErr()
	}
	d.charge(off, len(p), true)
	d.copyIn(p, off)
	d.stats.addWrite(int64(len(p)))
	return len(p), nil
}

// Persist makes the byte range [off, off+n) durable and charges the
// persistence-barrier cost. It is the CLFLUSH+fence analogue on PM and the
// cache-flush analogue on block devices. n == 0 persists nothing but still
// pays the barrier (an fsync on a clean file still issues a flush).
func (d *Device) Persist(off, n int64) error {
	if err := d.checkRange(off, int(min64(n, d.prof.Capacity-off))); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return fmt.Errorf("device %s: %w", d.prof.Name, ErrInjectedFault)
	}
	if d.cp != nil && d.cp.blocked() {
		return d.crashPointErr()
	}
	d.clk.Advance(d.prof.PersistLatency)
	d.stats.addPersist()
	first := off / pageSize
	last := (off + n - 1) / pageSize
	if n <= 0 {
		return nil
	}
	if d.cp == nil {
		for pg := first; pg <= last; pg++ {
			delete(d.shadow, pg)
		}
		return nil
	}
	// Crash-point mode: flush page by page so a sweep can tear the barrier.
	dirty := make([]int64, 0, last-first+1)
	for pg := first; pg <= last; pg++ {
		if _, ok := d.shadow[pg]; ok {
			dirty = append(dirty, pg)
		}
	}
	return d.persistPages(dirty)
}

// PersistAll makes the entire device durable (a full barrier). The error is
// always nil outside crash-point injection, so legacy callers may ignore it.
func (d *Device) PersistAll() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cp != nil && d.cp.blocked() {
		return d.crashPointErr()
	}
	d.clk.Advance(d.prof.PersistLatency)
	d.stats.addPersist()
	if d.cp == nil {
		d.shadow = make(map[int64][]byte)
		return nil
	}
	dirty := make([]int64, 0, len(d.shadow))
	for pg := range d.shadow {
		dirty = append(dirty, pg)
	}
	return d.persistPages(dirty)
}

// Crash simulates power loss: every byte not covered by a Persist since it
// was written reverts to its last durable contents. DRAM-class devices lose
// everything.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.prof.Class == DRAM {
		d.pages = make(map[int64][]byte)
		d.shadow = make(map[int64][]byte)
		return
	}
	for pg, durable := range d.shadow {
		if durable == nil {
			delete(d.pages, pg)
		} else {
			d.pages[pg] = durable
		}
	}
	d.shadow = make(map[int64][]byte)
}

// Discard drops the contents of [off, off+n) without cost (TRIM analogue).
// Partial pages at the edges are zero-filled rather than dropped.
func (d *Device) Discard(off, n int64) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + n
	firstPg := off / pageSize
	// Discarding an absent page is a no-op, so a span wider than the
	// resident page set walks the map instead of every page number in the
	// span — recovery's free-space scrub discards device-sized gaps, which
	// must not cost O(capacity).
	if spanPgs := (end+pageSize-1)/pageSize - firstPg; spanPgs > int64(len(d.pages)) {
		for pg := range d.pages {
			if pg >= firstPg && pg*pageSize < end {
				d.discardPage(pg, off, end)
			}
		}
		return
	}
	for pg := firstPg; pg*pageSize < end; pg++ {
		d.discardPage(pg, off, end)
	}
}

// discardPage drops or zeroes the part of page pg inside [off, end).
// Caller holds d.mu. Absent pages are untouched — nothing to shadow, since
// a crash-revert would restore absence anyway.
func (d *Device) discardPage(pg, off, end int64) {
	page, ok := d.pages[pg]
	if !ok {
		return
	}
	pstart, pend := pg*pageSize, (pg+1)*pageSize
	d.snapshotPage(pg)
	if off <= pstart && end >= pend {
		delete(d.pages, pg)
		return
	}
	lo := max64(off, pstart) - pstart
	hi := min64(end, pend) - pstart
	for i := lo; i < hi; i++ {
		page[i] = 0
	}
}

// InjectFailure makes every subsequent operation fail (or restores service
// when fail is false). Used by fault-injection tests.
func (d *Device) InjectFailure(fail bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = fail
}

// InjectFaults arms probabilistic fault injection with the given plan,
// replacing any previous plan and reseeding the fault RNG. A zero plan is
// equivalent to ClearFaults.
func (d *Device) InjectFaults(plan FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if plan == (FaultPlan{}) {
		d.plan, d.frand = FaultPlan{}, nil
		return
	}
	d.plan = plan
	d.frand = rand.New(rand.NewSource(plan.Seed))
}

// ClearFaults disarms probabilistic fault injection and releases a sticky
// fault latch (InjectFailure's switch included), restoring full service.
func (d *Device) ClearFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan, d.frand = FaultPlan{}, nil
	d.failed = false
}

// faultCheck rolls the active fault plan for one operation: possibly charge
// a latency spike, then possibly fail the op. Caller holds d.mu.
func (d *Device) faultCheck(write bool) error {
	if d.frand == nil {
		return nil
	}
	if d.plan.LatencyProb > 0 && d.frand.Float64() < d.plan.LatencyProb {
		d.clk.Advance(d.plan.LatencySpike)
		d.stats.addSpike(d.plan.LatencySpike)
	}
	p := d.plan.ReadErrProb
	if write {
		p = d.plan.WriteErrProb
	}
	if p > 0 && d.frand.Float64() < p {
		d.stats.addFault()
		if d.plan.Sticky {
			d.failed = true
			return fmt.Errorf("device %s: %w", d.prof.Name, ErrInjectedFault)
		}
		return fmt.Errorf("device %s: %w", d.prof.Name, ErrTransientFault)
	}
	return nil
}

// Stats returns a snapshot of the device's I/O statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.snapshot()
}

// ResetStats zeroes the statistics counters.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// charge computes and charges the cost of one access. Caller holds d.mu.
func (d *Device) charge(off int64, n int, write bool) {
	p := &d.prof
	var cost, bw int64
	if write {
		cost = int64(p.WriteLatency)
		bw = p.WriteBandwidth
	} else {
		cost = int64(p.ReadLatency)
		bw = p.ReadBandwidth
	}
	// Block devices transfer whole blocks; byte-addressable devices move
	// exactly the bytes touched.
	bytes := int64(n)
	if !p.ByteAddressable {
		bs := int64(p.BlockSize)
		first := off / bs
		last := (off + int64(n) - 1) / bs
		bytes = (last - first + 1) * bs
	}
	if bw > 0 {
		cost += bytes * int64(1e9) / bw
	}
	if p.SeekLatency > 0 && off != d.lastEnd {
		dist := off - d.lastEnd
		if dist < 0 {
			dist = -dist
		}
		cost += int64(p.SeekSettle)
		if p.Capacity > 0 {
			cost += int64(float64(p.SeekLatency) * float64(dist) / float64(p.Capacity))
		}
	}
	d.lastEnd = off + int64(n)
	d.clk.Advance(simdur(cost))
	d.stats.addBusy(cost)
}

// snapshotPage records the durable contents of page pg if not already
// shadowed. Caller holds d.mu.
func (d *Device) snapshotPage(pg int64) {
	if _, ok := d.shadow[pg]; ok {
		return
	}
	if page, ok := d.pages[pg]; ok {
		dup := make([]byte, pageSize)
		copy(dup, page)
		d.shadow[pg] = dup
	} else {
		d.shadow[pg] = nil
	}
}

func (d *Device) copyIn(p []byte, off int64) {
	for len(p) > 0 {
		pg := off / pageSize
		pgOff := off % pageSize
		n := int64(len(p))
		if n > pageSize-pgOff {
			n = pageSize - pgOff
		}
		d.snapshotPage(pg)
		page, ok := d.pages[pg]
		if !ok {
			page = make([]byte, pageSize)
			d.pages[pg] = page
		}
		copy(page[pgOff:pgOff+n], p[:n])
		p = p[n:]
		off += n
	}
}

func (d *Device) copyOut(p []byte, off int64) {
	for len(p) > 0 {
		pg := off / pageSize
		pgOff := off % pageSize
		n := int64(len(p))
		if n > pageSize-pgOff {
			n = pageSize - pgOff
		}
		if page, ok := d.pages[pg]; ok {
			copy(p[:n], page[pgOff:pgOff+n])
		} else {
			for i := int64(0); i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
