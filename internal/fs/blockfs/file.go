package blockfs

import (
	"muxfs/internal/fs/fsrec"
	"muxfs/internal/vfs"
)

// file is an open blockfs handle.
type file struct {
	fs     *FS
	path   string
	ino    uint64
	closed bool
}

var _ vfs.File = (*file)(nil)

func (f *file) node() (*inode, error) {
	if f.closed {
		return nil, vfs.ErrClosed
	}
	ino, ok := f.fs.inodes[f.ino]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return ino, nil
}

// Path returns the path the handle was opened with.
func (f *file) Path() string { return f.path }

// ReadAt reads through the page cache.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("read", f.fs.name, f.path, err)
	}
	return f.fs.readLocked(ino, f.ino, p, off)
}

// WriteAt writes through to the device; durability comes from Sync.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("write", f.fs.name, f.path, err)
	}
	return f.fs.writeLocked(ino, f.ino, p, off)
}

// Truncate sets the logical size.
func (f *file) Truncate(size int64) error {
	if size < 0 {
		return vfs.Errf("truncate", f.fs.name, f.path, vfs.ErrInvalid)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("truncate", f.fs.name, f.path, err)
	}
	fs := f.fs
	fs.clk.Advance(fs.costs.MetaOp)
	now := fs.now()
	if size < ino.meta.Size {
		fs.freeRange(ino, f.ino, size, ino.meta.Size-size)
		fs.zeroEdge(ino, f.ino, size, ino.meta.Size)
	}
	ino.meta.Size = size
	ino.meta.ModTime = now
	ino.meta.CTime = now
	rec := fsrec.Op{Type: fsrec.OpTruncate, Ino: f.ino, Size: size, MTime: now}.Record()
	if err := fs.queue(rec); err != nil {
		return vfs.Errf("truncate", fs.name, f.path, err)
	}
	return nil
}

// Sync makes the file durable: ordered data flush plus journal commit
// (fsync semantics; the whole pending batch commits, like a JBD2
// transaction carrying this file's records).
func (f *file) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.node(); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	if err := f.fs.flushCache(f.ino, false); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	if err := f.fs.flushPending(); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	f.fs.dev.PersistAll()
	return nil
}

// Close releases the handle.
func (f *file) Close() error {
	f.closed = true
	return nil
}

// Stat returns current metadata.
func (f *file) Stat() (vfs.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.FileInfo{}, vfs.Errf("stat", f.fs.name, f.path, err)
	}
	fi := ino.meta.Info(f.path)
	fi.Blocks = ino.ext.MappedBytes()
	return fi, nil
}

// Extents lists allocated runs merged in file-offset order.
func (f *file) Extents() ([]vfs.Extent, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return nil, vfs.Errf("extents", f.fs.name, f.path, err)
	}
	var out []vfs.Extent
	ino.ext.Walk(func(off, n int64, _ int64) bool {
		if len(out) > 0 && out[len(out)-1].End() == off {
			out[len(out)-1].Len += n
		} else {
			out = append(out, vfs.Extent{Off: off, Len: n})
		}
		return true
	})
	return out, nil
}

// PunchHole deallocates whole pages in the range and zeroes ragged edges.
func (f *file) PunchHole(off, n int64) error {
	if off < 0 || n < 0 {
		return vfs.Errf("punch", f.fs.name, f.path, vfs.ErrInvalid)
	}
	if n == 0 {
		return nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("punch", f.fs.name, f.path, err)
	}
	fs := f.fs
	fs.clk.Advance(fs.costs.MetaOp)
	end := off + n
	if end > ino.meta.Size {
		end = ino.meta.Size
	}
	if end <= off {
		return nil
	}
	fs.freeRange(ino, f.ino, off, end-off)
	firstWhole := (off + PageSize - 1) / PageSize * PageSize
	lastWhole := end / PageSize * PageSize
	if firstWhole > lastWhole {
		fs.zeroEdge(ino, f.ino, off, end)
	} else {
		fs.zeroEdge(ino, f.ino, off, firstWhole)
		fs.zeroEdge(ino, f.ino, lastWhole, end)
	}
	now := fs.now()
	ino.meta.ModTime = now
	ino.meta.CTime = now
	rec := fsrec.Op{Type: fsrec.OpPunch, Ino: f.ino, Off: off, N: end - off, MTime: now}.Record()
	if err := fs.queue(rec); err != nil {
		return vfs.Errf("punch", fs.name, f.path, err)
	}
	return nil
}

// zeroEdge writes zeros over still-mapped bytes of [from, to) on the device
// and in any resident cache page. Caller holds fs.mu.
func (fs *FS) zeroEdge(ino *inode, inoNum uint64, from, to int64) {
	if to <= from {
		return
	}
	for _, seg := range ino.ext.Segments(from, to-from) {
		if seg.Hole {
			continue
		}
		zeros := make([]byte, seg.Len)
		fs.dev.WriteAt(zeros, seg.Off+seg.Val)
		// Patch resident cache pages (the segment may straddle pages).
		for pg := seg.Off / PageSize; pg*PageSize < seg.End(); pg++ {
			data, ok := fs.cache.Peek(pagecacheKey(inoNum, pg))
			if !ok {
				continue
			}
			pgStart := pg * PageSize
			lo, hi := seg.Off, seg.End()
			if lo < pgStart {
				lo = pgStart
			}
			if hi > pgStart+PageSize {
				hi = pgStart + PageSize
			}
			for i := lo; i < hi; i++ {
				data[i-pgStart] = 0
			}
		}
	}
}
