package blockfs

import (
	"muxfs/internal/fs/fsrec"
	"muxfs/internal/journal"
	"muxfs/internal/vfs"
)

// file is an open blockfs handle.
type file struct {
	fs     *FS
	path   string
	ino    uint64
	closed bool
}

var _ vfs.File = (*file)(nil)

func (f *file) node() (*inode, error) {
	if f.closed {
		return nil, vfs.ErrClosed
	}
	ino, ok := f.fs.inodes[f.ino]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return ino, nil
}

// Path returns the path the handle was opened with.
func (f *file) Path() string { return f.path }

// ReadAt reads through the page cache.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("read", f.fs.name, f.path, err)
	}
	return f.fs.readLocked(ino, f.ino, p, off)
}

// WriteAt writes through to the device; durability comes from Sync.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("write", f.fs.name, f.path, err)
	}
	return f.fs.writeLocked(ino, f.ino, p, off)
}

// Truncate sets the logical size.
func (f *file) Truncate(size int64) error {
	if size < 0 {
		return vfs.Errf("truncate", f.fs.name, f.path, vfs.ErrInvalid)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("truncate", f.fs.name, f.path, err)
	}
	fs := f.fs
	fs.clk.Advance(fs.costs.MetaOp)
	now := fs.now()
	var recs []journal.Record
	if size < ino.meta.Size {
		ops, err := fs.shrinkExtents(ino, f.ino, size)
		if err != nil {
			return vfs.Errf("truncate", fs.name, f.path, err)
		}
		for _, op := range ops {
			op.Size = size
			op.MTime = now
			recs = append(recs, op.Record())
		}
	}
	ino.meta.Size = size
	ino.meta.ModTime = now
	ino.meta.CTime = now
	recs = append(recs, fsrec.Op{Type: fsrec.OpTruncate, Ino: f.ino, Size: size, MTime: now}.Record())
	if err := fs.queue(recs...); err != nil {
		return vfs.Errf("truncate", fs.name, f.path, err)
	}
	return nil
}

// Sync makes the file durable: ordered data flush plus journal commit
// (fsync semantics; the whole pending batch commits, like a JBD2
// transaction carrying this file's records).
func (f *file) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.node(); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	if err := f.fs.flushCache(f.ino, false); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	if err := f.fs.flushPending(); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	f.fs.dev.PersistAll()
	return nil
}

// Close releases the handle.
func (f *file) Close() error {
	f.closed = true
	return nil
}

// Stat returns current metadata.
func (f *file) Stat() (vfs.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.FileInfo{}, vfs.Errf("stat", f.fs.name, f.path, err)
	}
	fi := ino.meta.Info(f.path)
	fi.Blocks = ino.ext.MappedBytes()
	return fi, nil
}

// Extents lists allocated runs merged in file-offset order.
func (f *file) Extents() ([]vfs.Extent, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return nil, vfs.Errf("extents", f.fs.name, f.path, err)
	}
	var out []vfs.Extent
	ino.ext.Walk(func(off, n int64, _ int64) bool {
		if len(out) > 0 && out[len(out)-1].End() == off {
			out[len(out)-1].Len += n
		} else {
			out = append(out, vfs.Extent{Off: off, Len: n})
		}
		return true
	})
	return out, nil
}

// PunchHole deallocates whole pages in the range and zeroes ragged edges.
func (f *file) PunchHole(off, n int64) error {
	if off < 0 || n < 0 {
		return vfs.Errf("punch", f.fs.name, f.path, vfs.ErrInvalid)
	}
	if n == 0 {
		return nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("punch", f.fs.name, f.path, err)
	}
	fs := f.fs
	fs.clk.Advance(fs.costs.MetaOp)
	end := off + n
	if end > ino.meta.Size {
		end = ino.meta.Size
	}
	if end <= off {
		return nil
	}
	// Ragged edges are rewritten copy-on-write (see cowZeroEdge) so the old
	// bytes stay intact until the punch transaction commits.
	var ops []fsrec.Op
	var cowErr error
	firstWhole := (off + PageSize - 1) / PageSize * PageSize
	lastWhole := end / PageSize * PageSize
	if firstWhole > lastWhole { // range inside one page
		ops, cowErr = fs.cowZeroEdge(ino, f.ino, off, end)
	} else {
		if ops, cowErr = fs.cowZeroEdge(ino, f.ino, off, firstWhole); cowErr == nil {
			var more []fsrec.Op
			more, cowErr = fs.cowZeroEdge(ino, f.ino, lastWhole, end)
			ops = append(ops, more...)
		}
	}
	if cowErr != nil {
		return vfs.Errf("punch", fs.name, f.path, cowErr)
	}
	fs.freeRange(ino, f.ino, off, end-off)
	now := fs.now()
	ino.meta.ModTime = now
	ino.meta.CTime = now
	recs := make([]journal.Record, 0, len(ops)+1)
	for _, op := range ops {
		op.Size = ino.meta.Size
		op.MTime = now
		recs = append(recs, op.Record())
	}
	recs = append(recs, fsrec.Op{Type: fsrec.OpPunch, Ino: f.ino, Off: off, N: end - off, MTime: now}.Record())
	if err := fs.queue(recs...); err != nil {
		return vfs.Errf("punch", fs.name, f.path, err)
	}
	return nil
}
