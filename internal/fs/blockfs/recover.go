package blockfs

import (
	"fmt"

	"muxfs/internal/fs/fsrec"
	"muxfs/internal/fsbase"
	"muxfs/internal/journal"
)

// applyRecord replays one committed journal record during Recover. Caller
// holds fs.mu over a reset state.
func (fs *FS) applyRecord(r journal.Record) error {
	op, err := fsrec.Parse(r)
	if err != nil {
		return err
	}
	switch op.Type {
	case fsrec.OpCreate:
		node, err := fs.ns.CreateFileIno(op.Path, op.Mode, op.Ino)
		if err != nil {
			return fmt.Errorf("replay create %q: %w", op.Path, err)
		}
		fs.inodes[node.Ino] = &inode{meta: fsbase.Meta{Mode: op.Mode}}

	case fsrec.OpMkdir:
		if _, err := fs.ns.Mkdir(op.Path, op.Mode); err != nil {
			return fmt.Errorf("replay mkdir %q: %w", op.Path, err)
		}
		fs.ns.BumpIno(op.Ino)

	case fsrec.OpRemove:
		node, err := fs.ns.Remove(op.Path)
		if err != nil {
			return fmt.Errorf("replay remove %q: %w", op.Path, err)
		}
		if ino, ok := fs.inodes[node.Ino]; ok {
			fs.dropTail(ino, node.Ino, 0)
			delete(fs.inodes, node.Ino)
		}

	case fsrec.OpRename:
		if _, err := fs.ns.Rename(op.Path, op.Path2); err != nil {
			return fmt.Errorf("replay rename %q->%q: %w", op.Path, op.Path2, err)
		}

	case fsrec.OpExtent:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay extent: unknown inode %d", op.Ino)
		}
		// A remap record (copy-on-write shrink/punch edge) supersedes live
		// mappings: release the blocks it replaces, as the foreground op did.
		for _, seg := range ino.ext.Segments(op.Off, op.N) {
			if seg.Hole {
				continue
			}
			dev := seg.Off + seg.Val
			for b := dev / PageSize * PageSize; b < dev+seg.Len; b += PageSize {
				fs.placer.Free(b-fs.dataStart, PageSize)
			}
		}
		ino.ext.Insert(op.Off, op.N, op.Delta)
		fs.placer.MarkUsed(op.Off+op.Delta-fs.dataStart, op.N)
		if op.Size > ino.meta.Size {
			ino.meta.Size = op.Size
		}
		ino.meta.ModTime = op.MTime

	case fsrec.OpSetAttr:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay setattr: unknown inode %d", op.Ino)
		}
		if op.Size < ino.meta.Size {
			fs.dropTail(ino, op.Ino, op.Size)
		}
		ino.meta.Size = op.Size
		ino.meta.Mode = op.Mode
		ino.meta.ModTime = op.MTime
		ino.meta.ATime = op.ATime
		ino.meta.CTime = op.CTime

	case fsrec.OpSizeTime:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay sizetime: unknown inode %d", op.Ino)
		}
		if op.Size > ino.meta.Size {
			ino.meta.Size = op.Size
		}
		ino.meta.ModTime = op.MTime

	case fsrec.OpPunch:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay punch: unknown inode %d", op.Ino)
		}
		fs.freeRange(ino, op.Ino, op.Off, op.N)
		ino.meta.ModTime = op.MTime

	case fsrec.OpTruncate:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay truncate: unknown inode %d", op.Ino)
		}
		if op.Size < ino.meta.Size {
			fs.dropTail(ino, op.Ino, op.Size)
		}
		ino.meta.Size = op.Size
		ino.meta.ModTime = op.MTime

	default:
		return fmt.Errorf("replay: unhandled op type %d", op.Type)
	}
	return nil
}
