package blockfs

import (
	"muxfs/internal/alloc"
	"muxfs/internal/pagecache"
)

func pagecacheKey(ino uint64, page int64) pagecache.Key {
	return pagecache.Key{File: ino, Page: page}
}

// ExtentPlacer manages space with a first-fit extent allocator — the
// xfslite strategy: large contiguous grants, few extents per file.
type ExtentPlacer struct {
	ea *alloc.ExtentAlloc
}

// NewExtentPlacer creates an extent placer over size bytes.
func NewExtentPlacer(size int64) Placer {
	return &ExtentPlacer{ea: alloc.NewExtentAlloc(size / PageSize * PageSize)}
}

// Alloc grants up to n bytes (page-aligned), possibly short.
func (p *ExtentPlacer) Alloc(n int64) (Run, error) {
	n = (n + PageSize - 1) / PageSize * PageSize
	off, got, err := p.ea.Alloc(n)
	if err != nil {
		return Run{}, err
	}
	// Trim a ragged grant down to whole pages; return the remainder.
	if rem := got % PageSize; rem != 0 {
		if got < PageSize {
			p.ea.Free(off, got)
			return Run{}, alloc.ErrNoSpace
		}
		p.ea.Free(off+got-rem, rem)
		got -= rem
	}
	return Run{DevOff: off, Len: got}, nil
}

// Free releases a run.
func (p *ExtentPlacer) Free(devOff, n int64) { p.ea.Free(devOff, n) }

// MarkUsed reserves a run during recovery.
func (p *ExtentPlacer) MarkUsed(devOff, n int64) { p.ea.Reserve(devOff, n) }

// TotalBytes reports managed capacity.
func (p *ExtentPlacer) TotalBytes() int64 { return p.ea.Size() }

// UsedBytes reports allocated bytes.
func (p *ExtentPlacer) UsedBytes() int64 { return p.ea.Size() - p.ea.FreeBytes() }

// BitmapPlacer manages space one page at a time with a next-fit block
// bitmap — the extlite strategy: per-block pointers, goal allocation keeps
// sequential files mostly contiguous.
type BitmapPlacer struct {
	bm *alloc.Bitmap
}

// NewBitmapPlacer creates a bitmap placer over size bytes.
func NewBitmapPlacer(size int64) Placer {
	return &BitmapPlacer{bm: alloc.NewBitmap(size / PageSize)}
}

// Alloc grants exactly one page per call (block-mapped design).
func (p *BitmapPlacer) Alloc(n int64) (Run, error) {
	blk, err := p.bm.Alloc()
	if err != nil {
		return Run{}, err
	}
	return Run{DevOff: blk * PageSize, Len: PageSize}, nil
}

// Free releases pages of a run.
func (p *BitmapPlacer) Free(devOff, n int64) {
	for b := devOff / PageSize; b < (devOff+n)/PageSize; b++ {
		p.bm.FreeBlock(b)
	}
}

// MarkUsed reserves pages during recovery.
func (p *BitmapPlacer) MarkUsed(devOff, n int64) {
	for b := devOff / PageSize; b < (devOff+n+PageSize-1)/PageSize; b++ {
		p.bm.MarkUsed(b)
	}
}

// TotalBytes reports managed capacity.
func (p *BitmapPlacer) TotalBytes() int64 { return p.bm.Blocks() * PageSize }

// UsedBytes reports allocated bytes.
func (p *BitmapPlacer) UsedBytes() int64 { return p.bm.Used() * PageSize }
