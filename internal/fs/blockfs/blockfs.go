// Package blockfs is the shared engine behind the two journaled block file
// systems, xfslite (XFS-like, extent-allocated) and extlite (Ext4-like,
// block-mapped). The engine provides the namespace, page cache, write-ahead
// metadata journal with group commit, ordered data flushing, and crash
// recovery; each flavor plugs in its space-management strategy (Placer) and
// its software-path cost model.
package blockfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"muxfs/internal/device"
	"muxfs/internal/extent"
	"muxfs/internal/fs/fsrec"
	"muxfs/internal/fsbase"
	"muxfs/internal/journal"
	"muxfs/internal/pagecache"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

// PageSize is the file-to-device mapping granule.
const PageSize = 4096

// Run is a contiguous device-space allocation.
type Run struct{ DevOff, Len int64 }

// Placer is the space-management strategy: xfslite uses a first-fit extent
// allocator (few large runs), extlite a block bitmap (page-at-a-time with a
// next-fit goal). All lengths are multiples of PageSize.
type Placer interface {
	// Alloc obtains up to n bytes; short grants are allowed (callers loop).
	Alloc(n int64) (Run, error)
	// Free releases a previously allocated run.
	Free(devOff, n int64)
	// MarkUsed reserves a run during recovery replay.
	MarkUsed(devOff, n int64)
	// TotalBytes and UsedBytes report capacity accounting.
	TotalBytes() int64
	UsedBytes() int64
}

// Costs models the software path charged to the virtual clock, separate
// from device media costs. extlite's indirect block-map traversal makes its
// ReadOp an order of magnitude slower than xfslite's extent lookup — the
// knob behind the per-FS differences in experiment E3.
type Costs struct {
	ReadOp  time.Duration // per read call (index traversal)
	WriteOp time.Duration // per write call
	PerPage time.Duration // per 4 KiB page touched
	MetaOp  time.Duration // namespace ops
}

// Config assembles a blockfs flavor.
type Config struct {
	Name        string
	Costs       Costs
	JournalFrac int64 // journal gets Capacity/JournalFrac bytes (min 1 MiB)
	GroupCommit int   // pending records that force a journal commit
	CachePages  int   // page cache capacity
	// NewPlacer builds the space manager for the data region [0, size).
	// Returned offsets are region-relative; the engine rebases them.
	NewPlacer func(size int64) Placer
}

type inode struct {
	meta fsbase.Meta
	// ext maps file offsets to device offsets, delta-encoded
	// (value = devOff - fileOff) so splits and merges stay exact.
	ext extent.Tree[int64]
}

// FS is a mounted blockfs instance. Safe for concurrent use.
type FS struct {
	name  string
	dev   *device.Device
	clk   *simclock.Clock
	costs Costs
	cfg   Config

	mu      sync.Mutex
	ns      *fsbase.Namespace
	inodes  map[uint64]*inode
	placer  Placer
	jnl     *journal.Dual
	pending []journal.Record // uncommitted metadata records (group commit)
	// pendingFrees holds device runs unmapped by uncommitted operations
	// (absolute offsets). They return to the placer only after the journal
	// transaction freeing them commits: released earlier, the next write
	// could reuse and durably overwrite blocks that still-committed
	// metadata references, corrupting synced files if the commit never
	// lands.
	pendingFrees []Run
	cache        *pagecache.Cache
	recovering   bool // replay must not touch device data (pages may have been reused)

	dataStart int64
}

var _ vfs.FileSystem = (*FS)(nil)
var _ vfs.CrashRecoverer = (*FS)(nil)
var _ vfs.Profiled = (*FS)(nil)

// New mounts a fresh file system on dev with the given flavor config.
func New(dev *device.Device, cfg Config) (*FS, error) {
	if cfg.NewPlacer == nil {
		return nil, fmt.Errorf("blockfs: config %q lacks a placer", cfg.Name)
	}
	if cfg.JournalFrac <= 0 {
		cfg.JournalFrac = 16
	}
	if cfg.GroupCommit <= 0 {
		cfg.GroupCommit = 256
	}
	if cfg.CachePages <= 0 {
		cfg.CachePages = int(device.DefaultDRAMCapacity / PageSize)
	}
	logSize := dev.Capacity() / cfg.JournalFrac
	if logSize < 1<<20 {
		logSize = 1 << 20
	}
	if logSize > dev.Capacity()/2 {
		return nil, fmt.Errorf("blockfs: device %s too small", dev.Profile().Name)
	}
	jnl, err := journal.NewDual(dev, 0, logSize)
	if err != nil {
		return nil, fmt.Errorf("blockfs: %w", err)
	}
	// Page cache hit cost: a DRAM-class access.
	dram := device.DRAMProfile("cache")
	fs := &FS{
		name:      cfg.Name,
		dev:       dev,
		clk:       dev.Clock(),
		costs:     cfg.Costs,
		cfg:       cfg,
		dataStart: logSize,
		jnl:       jnl,
		cache:     pagecache.New(cfg.CachePages, dev.Clock(), dram.ReadLatency),
	}
	fs.resetState()
	return fs, nil
}

func (fs *FS) resetState() {
	fs.ns = fsbase.NewNamespace()
	fs.inodes = make(map[uint64]*inode)
	fs.placer = fs.cfg.NewPlacer(fs.dev.Capacity() - fs.dataStart)
	fs.pending = nil
	fs.pendingFrees = nil
}

// Name identifies the instance.
func (fs *FS) Name() string { return fs.name }

// DeviceName returns the backing device's name.
func (fs *FS) DeviceName() string { return fs.dev.Profile().Name }

// Device exposes the backing device for benchmark inspection.
func (fs *FS) Device() *device.Device { return fs.dev }

// CacheStats exposes page cache counters for benchmark inspection.
func (fs *FS) CacheStats() pagecache.Stats { return fs.cache.Stats() }

// ReadCostHint estimates an n-byte read (assuming a device access).
func (fs *FS) ReadCostHint(n int64) time.Duration {
	p := fs.dev.Profile()
	return fs.costs.ReadOp + p.ReadLatency + time.Duration(n*int64(time.Second)/p.ReadBandwidth)
}

// WriteCostHint estimates an n-byte write.
func (fs *FS) WriteCostHint(n int64) time.Duration {
	p := fs.dev.Profile()
	return fs.costs.WriteOp + p.WriteLatency + time.Duration(n*int64(time.Second)/p.WriteBandwidth)
}

func (fs *FS) now() time.Duration { return fs.clk.Now() }

// queue buffers metadata records and group-commits when the batch is large
// enough. Caller holds fs.mu.
func (fs *FS) queue(recs ...journal.Record) error {
	fs.pending = append(fs.pending, recs...)
	if len(fs.pending) >= fs.cfg.GroupCommit {
		return fs.flushPending()
	}
	return nil
}

// writeback flushes one evicted dirty page to the device. Caller holds
// fs.mu.
func (fs *FS) writeback(ev pagecache.Evicted) error {
	if !ev.Dirty {
		return nil
	}
	ino, ok := fs.inodes[ev.Key.File]
	if !ok {
		return nil // file removed; invalidation already dropped its pages
	}
	v, _, mapped := ino.ext.Lookup(ev.Key.Page * PageSize)
	if !mapped {
		return nil
	}
	_, err := fs.dev.WriteAt(ev.Data, ev.Key.Page*PageSize+v)
	return err
}

// flushCache writes back dirty pages — of one file, or all — in sorted
// order, coalescing device-contiguous pages into large single writes. This
// models the real page-cache writeback path (elevator sorting + request
// merging) that gives the native file systems their "device-friendly"
// batched I/O: one op-latency charge per merged run instead of per block.
// Caller holds fs.mu.
func (fs *FS) flushCache(file uint64, all bool) error {
	// maxRun bounds a merged writeback request (a typical max I/O size).
	const maxRun = 4 << 20

	keys := fs.cache.DirtyPages(file, all)
	run := make([]byte, 0, maxRun)
	var runDev int64 // device offset of the run start

	flushRun := func() error {
		if len(run) == 0 {
			return nil
		}
		if _, err := fs.dev.WriteAt(run, runDev); err != nil {
			return err
		}
		run = run[:0]
		return nil
	}

	for _, k := range keys {
		data, ok := fs.cache.Peek(k)
		if !ok {
			continue
		}
		ino, ok := fs.inodes[k.File]
		if !ok {
			fs.cache.MarkClean(k)
			continue
		}
		v, _, mapped := ino.ext.Lookup(k.Page * PageSize)
		if !mapped {
			fs.cache.MarkClean(k)
			continue
		}
		dev := k.Page*PageSize + v
		if len(run) > 0 && (runDev+int64(len(run)) != dev || len(run)+PageSize > maxRun) {
			if err := flushRun(); err != nil {
				return err
			}
		}
		if len(run) == 0 {
			runDev = dev
		}
		run = append(run, data...)
		fs.cache.MarkClean(k)
	}
	return flushRun()
}

// flushPending commits buffered metadata. Ordered mode: dirty data writes
// back and persists before the journal commit, so committed metadata never
// references data the device does not hold. Caller holds fs.mu.
func (fs *FS) flushPending() error {
	if len(fs.pending) == 0 {
		return nil
	}
	if err := fs.flushCache(0, true); err != nil {
		return err
	}
	fs.dev.PersistAll() // ordered: data first
	tx := fs.jnl.Begin()
	for _, r := range fs.pending {
		tx.Append(r)
	}
	err := tx.Commit()
	if errors.Is(err, journal.ErrFull) {
		if cerr := fs.compact(); cerr != nil {
			return cerr
		}
		tx = fs.jnl.Begin()
		for _, r := range fs.pending {
			tx.Append(r)
		}
		err = tx.Commit()
	}
	if err != nil {
		return err
	}
	fs.pending = fs.pending[:0]
	// The batch is durable; blocks it unmapped are now safe to reuse.
	for _, r := range fs.pendingFrees {
		fs.placer.Free(r.DevOff-fs.dataStart, r.Len)
		fs.dev.Discard(r.DevOff, r.Len)
	}
	fs.pendingFrees = nil
	return nil
}

// compact rewrites the journal as a snapshot of current state. The dual
// journal makes it crash-atomic: the snapshot commits into the spare half
// before the superblock flips, so no crash point loses the log. Caller
// holds fs.mu.
func (fs *FS) compact() error {
	err := fs.jnl.Compact(func(tx *journal.Tx) {
		fs.ns.WalkAll(func(path string, node *fsbase.Node) {
			if node.IsDir() {
				tx.Append(fsrec.Op{Type: fsrec.OpMkdir, Ino: node.Ino, Path: path, Mode: node.Mode}.Record())
				return
			}
			ino := fs.inodes[node.Ino]
			tx.Append(fsrec.Op{Type: fsrec.OpCreate, Ino: node.Ino, Path: path, Mode: ino.meta.Mode}.Record())
			tx.Append(fsrec.Op{
				Type: fsrec.OpSetAttr, Ino: node.Ino,
				Size: ino.meta.Size, Mode: ino.meta.Mode,
				MTime: ino.meta.ModTime, ATime: ino.meta.ATime, CTime: ino.meta.CTime,
			}.Record())
			ino.ext.Walk(func(off, n, delta int64) bool {
				tx.Append(fsrec.Op{
					Type: fsrec.OpExtent, Ino: node.Ino, Off: off, Delta: delta, N: n,
					Size: ino.meta.Size, MTime: ino.meta.ModTime,
				}.Record())
				return true
			})
		})
	})
	if err != nil {
		return fmt.Errorf("blockfs %s: journal compaction: %w", fs.name, err)
	}
	return nil
}

// Create makes and opens a new regular file.
func (fs *FS) Create(path string) (vfs.File, error) {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.CreateFile(path, 0o644)
	if err != nil {
		return nil, vfs.Errf("create", fs.name, path, err)
	}
	now := fs.now()
	fs.inodes[node.Ino] = &inode{meta: fsbase.Meta{Mode: 0o644, ModTime: now, ATime: now, CTime: now}}
	if err := fs.queue(fsrec.Op{Type: fsrec.OpCreate, Ino: node.Ino, Path: path, Mode: 0o644}.Record()); err != nil {
		return nil, vfs.Errf("create", fs.name, path, err)
	}
	return &file{fs: fs, path: path, ino: node.Ino}, nil
}

// Open opens an existing regular file.
func (fs *FS) Open(path string) (vfs.File, error) {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Lookup(path)
	if err != nil {
		return nil, vfs.Errf("open", fs.name, path, err)
	}
	if node.IsDir() {
		return nil, vfs.Errf("open", fs.name, path, vfs.ErrIsDir)
	}
	return &file{fs: fs, path: path, ino: node.Ino}, nil
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(path string) error {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Remove(path)
	if err != nil {
		return vfs.Errf("remove", fs.name, path, err)
	}
	if ino, ok := fs.inodes[node.Ino]; ok {
		fs.dropTail(ino, node.Ino, 0)
		delete(fs.inodes, node.Ino)
		fs.cache.InvalidateFile(node.Ino)
	}
	if err := fs.queue(fsrec.Op{Type: fsrec.OpRemove, Path: path}.Record()); err != nil {
		return vfs.Errf("remove", fs.name, path, err)
	}
	return nil
}

// Rename moves a file or directory.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldPath, newPath = vfs.CleanPath(oldPath), vfs.CleanPath(newPath)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	if _, err := fs.ns.Rename(oldPath, newPath); err != nil {
		return vfs.Errf("rename", fs.name, oldPath, err)
	}
	if err := fs.queue(fsrec.Op{Type: fsrec.OpRename, Path: oldPath, Path2: newPath}.Record()); err != nil {
		return vfs.Errf("rename", fs.name, oldPath, err)
	}
	return nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string) error {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Mkdir(path, 0o755)
	if err != nil {
		return vfs.Errf("mkdir", fs.name, path, err)
	}
	if err := fs.queue(fsrec.Op{Type: fsrec.OpMkdir, Ino: node.Ino, Path: path, Mode: node.Mode}.Record()); err != nil {
		return vfs.Errf("mkdir", fs.name, path, err)
	}
	return nil
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	ents, err := fs.ns.ReadDir(vfs.CleanPath(path))
	if err != nil {
		return nil, vfs.Errf("readdir", fs.name, path, err)
	}
	return ents, nil
}

// Stat returns metadata for a path.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Lookup(path)
	if err != nil {
		return vfs.FileInfo{}, vfs.Errf("stat", fs.name, path, err)
	}
	if node.IsDir() {
		return vfs.FileInfo{Path: path, Mode: node.Mode}, nil
	}
	ino := fs.inodes[node.Ino]
	fi := ino.meta.Info(path)
	fi.Blocks = ino.ext.MappedBytes()
	return fi, nil
}

// SetAttr applies a partial metadata update.
func (fs *FS) SetAttr(path string, attr vfs.SetAttr) error {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Lookup(path)
	if err != nil {
		return vfs.Errf("setattr", fs.name, path, err)
	}
	if node.IsDir() {
		return vfs.Errf("setattr", fs.name, path, vfs.ErrIsDir)
	}
	ino := fs.inodes[node.Ino]
	var recs []journal.Record
	if attr.Size != nil && *attr.Size < ino.meta.Size {
		ops, err := fs.shrinkExtents(ino, node.Ino, *attr.Size)
		if err != nil {
			return vfs.Errf("setattr", fs.name, path, err)
		}
		now := fs.now()
		for _, op := range ops {
			op.Size = *attr.Size
			op.MTime = now
			recs = append(recs, op.Record())
		}
	}
	if !ino.meta.Apply(attr, fs.now()) {
		return nil
	}
	if attr.Mode != nil {
		node.Mode = ino.meta.Mode
	}
	recs = append(recs, fsrec.Op{
		Type: fsrec.OpSetAttr, Ino: node.Ino,
		Size: ino.meta.Size, Mode: ino.meta.Mode,
		MTime: ino.meta.ModTime, ATime: ino.meta.ATime, CTime: ino.meta.CTime,
	}.Record())
	if err := fs.queue(recs...); err != nil {
		return vfs.Errf("setattr", fs.name, path, err)
	}
	return nil
}

// Truncate sets the file size by path.
func (fs *FS) Truncate(path string, size int64) error {
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Truncate(size)
}

// Statfs reports capacity accounting for the data region.
func (fs *FS) Statfs() (vfs.StatFS, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	total := fs.placer.TotalBytes()
	used := fs.placer.UsedBytes()
	// Blocks awaiting their freeing transaction's commit are logically free.
	for _, r := range fs.pendingFrees {
		used -= r.Len
	}
	return vfs.StatFS{
		Capacity:  total,
		Used:      used,
		Available: total - used,
		Files:     fs.ns.FileCount(),
	}, nil
}

// Sync writes back all dirty pages, persists the device, and commits all
// pending metadata.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	if err := fs.flushCache(0, true); err != nil {
		return vfs.Errf("sync", fs.name, "/", err)
	}
	if err := fs.flushPending(); err != nil {
		return vfs.Errf("sync", fs.name, "/", err)
	}
	fs.dev.PersistAll()
	return nil
}

// Crash simulates power loss: un-persisted device state and the entire DRAM
// page cache vanish.
func (fs *FS) Crash() {
	fs.dev.Crash()
	fs.cache.InvalidateAll()
}

// Recover rebuilds in-memory state by replaying the journal.
func (fs *FS) Recover() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.resetState()
	fs.cache.InvalidateAll()
	fs.recovering = true
	_, err := fs.jnl.Replay(fs.applyRecord)
	fs.recovering = false
	if err != nil {
		return fmt.Errorf("blockfs %s: recover: %w", fs.name, err)
	}
	fs.scrubFreeSpace()
	return nil
}

// CheckConsistency cross-checks the extent maps against the space manager:
// no device byte may be referenced by two mappings, every mapping must lie
// inside the data region, and the placer's used-byte accounting must equal
// exactly the referenced pages plus any frees still pending commit — no
// leaked and no double-counted blocks. The crash sweep runs it after every
// remount.
func (fs *FS) CheckConsistency() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	type ival struct{ off, end int64 }
	var ivals []ival
	pages := make(map[int64]bool)
	for inoNum, ino := range fs.inodes {
		var werr error
		ino.ext.Walk(func(off, n, delta int64) bool {
			dev := off + delta
			if dev < fs.dataStart || dev+n > fs.dev.Capacity() {
				werr = fmt.Errorf("blockfs %s: ino %d maps [%d,%d) outside the data region",
					fs.name, inoNum, dev, dev+n)
				return false
			}
			ivals = append(ivals, ival{dev, dev + n})
			for b := dev / PageSize * PageSize; b < dev+n; b += PageSize {
				pages[b] = true
			}
			return true
		})
		if werr != nil {
			return werr
		}
	}
	sort.Slice(ivals, func(i, j int) bool { return ivals[i].off < ivals[j].off })
	for i := 1; i < len(ivals); i++ {
		if ivals[i].off < ivals[i-1].end {
			return fmt.Errorf("blockfs %s: device bytes [%d,%d) double-referenced",
				fs.name, ivals[i].off, ivals[i-1].end)
		}
	}
	var pendingBytes int64
	for _, r := range fs.pendingFrees {
		pendingBytes += r.Len
	}
	want := int64(len(pages))*PageSize + pendingBytes
	if got := fs.placer.UsedBytes(); got != want {
		return fmt.Errorf("blockfs %s: allocator reports %d bytes used, mappings reference %d (+%d pending free) — leaked or double-counted blocks",
			fs.name, got, want-pendingBytes, pendingBytes)
	}
	return nil
}

// scrubFreeSpace zeroes unallocated data space after replay so deleted
// files' stale contents cannot leak into fresh partial-page allocations.
// Caller holds fs.mu.
func (fs *FS) scrubFreeSpace() {
	// Collect the referenced device ranges and discard only the gaps
	// between them: the scrub must cost O(live extents), not O(device
	// capacity) — an early version walked every page of the device, which
	// made recovery of a near-empty HDD tier the slowest step of the whole
	// remount.
	type ival struct{ off, end int64 }
	var used []ival
	for _, ino := range fs.inodes {
		ino.ext.Walk(func(off, n, delta int64) bool {
			devOff := off + delta
			lo := devOff / PageSize * PageSize
			hi := (devOff + n + PageSize - 1) / PageSize * PageSize
			used = append(used, ival{lo, hi})
			return true
		})
	}
	sort.Slice(used, func(i, j int) bool { return used[i].off < used[j].off })
	pos := fs.dataStart
	for _, u := range used {
		if u.off > pos {
			fs.dev.Discard(pos, u.off-pos)
		}
		if u.end > pos {
			pos = u.end
		}
	}
	if c := fs.dev.Capacity(); c > pos {
		fs.dev.Discard(pos, c-pos)
	}
}

// freeRange releases whole pages inside [off, off+n): placer space, extent
// mappings, cached pages. Caller holds fs.mu.
func (fs *FS) freeRange(ino *inode, inoNum uint64, off, n int64) {
	if n <= 0 {
		return
	}
	start := (off + PageSize - 1) / PageSize * PageSize
	end := (off + n) / PageSize * PageSize
	if end <= start {
		return
	}
	for _, seg := range ino.ext.Segments(start, end-start) {
		if seg.Hole {
			continue
		}
		dev := seg.Off + seg.Val
		if fs.recovering {
			// Replay rebuilds the allocator in memory; the device already
			// holds final data and freed pages may belong to newer files,
			// so no discard (Recover scrubs free space afterwards).
			fs.placer.Free(dev-fs.dataStart, seg.Len)
		} else {
			// Deferred until the transaction freeing these blocks commits
			// (see pendingFrees).
			fs.pendingFrees = append(fs.pendingFrees, Run{DevOff: dev, Len: seg.Len})
		}
	}
	ino.ext.Delete(start, end-start)
	fs.cache.InvalidateRange(inoNum, start, end-start)
}

// allocSpace obtains a run from the placer, forcing the pending batch to
// commit first when space is exhausted: blocks freed by uncommitted
// operations become reusable only once their transaction is durable
// (JBD2's retry-after-commit on ENOSPC). Caller holds fs.mu.
func (fs *FS) allocSpace(n int64) (Run, error) {
	run, err := fs.placer.Alloc(n)
	if err != nil && len(fs.pendingFrees) > 0 {
		if ferr := fs.flushPending(); ferr != nil {
			return Run{}, ferr
		}
		run, err = fs.placer.Alloc(n)
	}
	return run, err
}

// dropTail unmaps and frees every page whose bytes all lie at or past
// newSize, including the partial page at the old EOF (which freeRange's
// whole-page rounding would keep mapped with stale contents). The page
// containing newSize itself survives when newSize is mid-page; shrink
// callers rewrite it copy-on-write. Caller holds fs.mu.
func (fs *FS) dropTail(ino *inode, inoNum uint64, newSize int64) {
	_, hi := ino.ext.Bounds()
	end := (hi + PageSize - 1) / PageSize * PageSize
	if end > newSize {
		fs.freeRange(ino, inoNum, newSize, end-newSize)
	}
}

// shrinkExtents releases every mapping at or past newSize: whole tail pages
// are unmapped, and the new boundary page — whose bytes past newSize must
// read zero if the file grows back — is rewritten copy-on-write. The
// returned remap ops must join the shrink record's transaction (caller
// fills Size/MTime and queues them together). Caller holds fs.mu and
// updates ino.meta.Size afterwards.
func (fs *FS) shrinkExtents(ino *inode, inoNum uint64, newSize int64) ([]fsrec.Op, error) {
	var ops []fsrec.Op
	if newSize%PageSize != 0 {
		zTo := newSize/PageSize*PageSize + PageSize
		if zTo > ino.meta.Size {
			zTo = ino.meta.Size
		}
		var err error
		ops, err = fs.cowZeroEdge(ino, inoNum, newSize, zTo)
		if err != nil {
			return nil, err
		}
	}
	fs.dropTail(ino, inoNum, newSize)
	return ops, nil
}

// cowZeroEdge makes the mapped bytes of [zFrom, zTo) — a range inside one
// file page — read zero without touching the live block in place: a fresh
// block receives the preserved bytes (zeros over the cleared range) and the
// page is remapped onto it. The in-place alternative is not crash-safe: the
// ordered pre-commit flush would make the zeros durable before the
// truncate/punch record commits, corrupting the old contents if the commit
// never lands. The old block joins pendingFrees; the returned remap ops
// must commit in the same transaction as the caller's record. Caller holds
// fs.mu.
func (fs *FS) cowZeroEdge(ino *inode, inoNum uint64, zFrom, zTo int64) ([]fsrec.Op, error) {
	if zTo <= zFrom {
		return nil, nil
	}
	pageStart := zFrom / PageSize * PageSize
	segs := ino.ext.Segments(pageStart, PageSize)
	touched := false
	for _, seg := range segs {
		if !seg.Hole && seg.Off < zTo && seg.End() > zFrom {
			touched = true
			break
		}
	}
	if !touched {
		return nil, nil // holes already read zero
	}
	// Page image: a resident cache page is newest; otherwise read the
	// mapped runs off the device.
	buf := make([]byte, PageSize)
	key := pagecacheKey(inoNum, pageStart/PageSize)
	cached, resident := fs.cache.Peek(key)
	if resident {
		copy(buf, cached)
	} else {
		for _, seg := range segs {
			if seg.Hole {
				continue
			}
			dst := buf[seg.Off-pageStart : seg.Off-pageStart+seg.Len]
			if _, err := fs.dev.ReadAt(dst, seg.Off+seg.Val); err != nil {
				return nil, err
			}
		}
	}
	for i := zFrom; i < zTo; i++ {
		buf[i-pageStart] = 0
	}
	run, err := fs.allocSpace(PageSize)
	if err != nil || run.Len < PageSize {
		if err == nil {
			fs.placer.Free(run.DevOff, run.Len)
		}
		return nil, vfs.ErrNoSpace
	}
	devOff := fs.dataStart + run.DevOff
	// Volatile write; the ordered flush persists it before the remap
	// commits, so the copy is complete whenever the remap is durable.
	if _, err := fs.dev.WriteAt(buf, devOff); err != nil {
		fs.placer.Free(run.DevOff, PageSize)
		return nil, err
	}
	if resident {
		copy(cached, buf)
		fs.cache.MarkClean(key)
	}
	newDelta := devOff - pageStart
	var ops []fsrec.Op
	oldPages := make(map[int64]bool)
	for _, seg := range segs {
		if seg.Hole {
			continue
		}
		old := seg.Off + seg.Val
		for b := old / PageSize * PageSize; b < old+seg.Len; b += PageSize {
			if !oldPages[b] {
				oldPages[b] = true
				fs.pendingFrees = append(fs.pendingFrees, Run{DevOff: b, Len: PageSize})
			}
		}
		ino.ext.Insert(seg.Off, seg.Len, newDelta)
		ops = append(ops, fsrec.Op{Type: fsrec.OpExtent, Ino: inoNum, Off: seg.Off, Delta: newDelta, N: seg.Len})
	}
	return ops, nil
}

// readLocked serves ReadAt through the page cache. Caller holds fs.mu.
func (fs *FS) readLocked(ino *inode, inoNum uint64, p []byte, off int64) (int, error) {
	fs.clk.Advance(fs.costs.ReadOp)
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= ino.meta.Size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if off+n > ino.meta.Size {
		n = ino.meta.Size - off
		short = true
	}

	pos := off
	for pos < off+n {
		pg := pos / PageSize
		pgOff := pos % PageSize
		chunk := PageSize - pgOff
		if rem := off + n - pos; chunk > rem {
			chunk = rem
		}
		fs.clk.Advance(fs.costs.PerPage)
		dst := p[pos-off : pos-off+chunk]
		key := pagecache.Key{File: inoNum, Page: pg}
		if data, ok := fs.cache.Get(key); ok {
			copy(dst, data[pgOff:pgOff+chunk])
			pos += chunk
			continue
		}
		// Miss: fetch the whole page (hole pages read as zeros without
		// device I/O) and populate the cache. Inserting may evict a dirty
		// page, which must be written back, not dropped.
		pageBuf := make([]byte, PageSize)
		v, _, mapped := ino.ext.Lookup(pg * PageSize)
		if mapped {
			if _, err := fs.dev.ReadAt(pageBuf, pg*PageSize+v); err != nil {
				return 0, err
			}
			if ev, evicted := fs.cache.Put(key, pageBuf, false); evicted {
				if err := fs.writeback(ev); err != nil {
					return 0, err
				}
			}
		}
		copy(dst, pageBuf[pgOff:pgOff+chunk])
		pos += chunk
	}
	ino.meta.ATime = fs.now()
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// writeLocked serves WriteAt: allocate backing for holes, write through to
// the device, refresh cached pages, queue metadata records. Caller holds
// fs.mu.
func (fs *FS) writeLocked(ino *inode, inoNum uint64, p []byte, off int64) (int, error) {
	fs.clk.Advance(fs.costs.WriteOp)
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	n := int64(len(p))
	firstPage := off / PageSize
	lastPage := (off + n - 1) / PageSize
	fs.clk.Advance(time.Duration(lastPage-firstPage+1) * fs.costs.PerPage)

	// Map every hole in the page-aligned cover of [off, off+n).
	alignedOff := firstPage * PageSize
	alignedEnd := (lastPage + 1) * PageSize
	var newOps []fsrec.Op
	for _, seg := range ino.ext.Segments(alignedOff, alignedEnd-alignedOff) {
		if !seg.Hole {
			continue
		}
		remaining := seg.Len
		fileOff := seg.Off
		for remaining > 0 {
			run, err := fs.allocSpace(remaining)
			if err != nil {
				fs.rollbackNewRuns(ino, newOps)
				return 0, vfs.ErrNoSpace
			}
			devOff := fs.dataStart + run.DevOff
			delta := devOff - fileOff
			ino.ext.Insert(fileOff, run.Len, delta)
			newOps = append(newOps, fsrec.Op{
				Type: fsrec.OpExtent, Ino: inoNum, Off: fileOff, Delta: delta, N: run.Len,
			})
			fileOff += run.Len
			remaining -= run.Len
		}
	}

	// Write back through the page cache: the data lands in DRAM pages now
	// and reaches the device at eviction or fsync, in sorted order.
	for pg := firstPage; pg <= lastPage; pg++ {
		pgStart := pg * PageSize
		lo, hi := off, off+n
		if lo < pgStart {
			lo = pgStart
		}
		if hi > pgStart+PageSize {
			hi = pgStart + PageSize
		}
		key := pagecache.Key{File: inoNum, Page: pg}
		if data, ok := fs.cache.Peek(key); ok {
			copy(data[lo-pgStart:hi-pgStart], p[lo-off:hi-off])
			fs.cache.MarkDirty(key)
			fs.clk.Advance(fs.costs.PerPage) // DRAM copy path
			continue
		}
		// Miss: build the full page image (RMW fill from the device when
		// the write covers only part of an already-mapped page).
		buf := make([]byte, PageSize)
		if lo != pgStart || hi != pgStart+PageSize {
			if v, _, mapped := ino.ext.Lookup(pgStart); mapped {
				if _, err := fs.dev.ReadAt(buf, pgStart+v); err != nil {
					return 0, err
				}
			}
		}
		copy(buf[lo-pgStart:hi-pgStart], p[lo-off:hi-off])
		ev, evicted := fs.cache.Put(key, buf, true)
		if evicted {
			if err := fs.writeback(ev); err != nil {
				return 0, err
			}
		}
	}

	now := fs.now()
	if off+n > ino.meta.Size {
		ino.meta.Size = off + n
	}
	ino.meta.ModTime = now

	recs := make([]journal.Record, 0, len(newOps)+1)
	for _, op := range newOps {
		op.Size = ino.meta.Size
		op.MTime = now
		recs = append(recs, op.Record())
	}
	recs = append(recs, fsrec.Op{Type: fsrec.OpSizeTime, Ino: inoNum, Size: ino.meta.Size, MTime: now}.Record())
	if err := fs.queue(recs...); err != nil {
		return 0, err
	}
	return int(n), nil
}

// rollbackNewRuns undoes partial allocations of a failed write.
func (fs *FS) rollbackNewRuns(ino *inode, ops []fsrec.Op) {
	for _, op := range ops {
		fs.placer.Free(op.Off+op.Delta-fs.dataStart, op.N)
		ino.ext.Delete(op.Off, op.N)
	}
}
