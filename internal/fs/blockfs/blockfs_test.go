package blockfs

import (
	"bytes"
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/fstest"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

// newSmallCacheFS builds a blockfs with a tiny page cache so eviction
// write-back paths trigger quickly.
func newSmallCacheFS(t *testing.T, cachePages int) (*FS, *device.Device) {
	t.Helper()
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs, err := New(dev, Config{
		Name:       "test@ssd0",
		Costs:      Costs{},
		CachePages: cachePages,
		NewPlacer:  NewExtentPlacer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestWriteBackOnEviction(t *testing.T) {
	fs, dev := newSmallCacheFS(t, 4) // 16 KiB of cache
	f, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := bytes.Repeat([]byte{0x42}, 64*1024) // 16 pages >> 4-page cache
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	// Evictions must have pushed most pages to the device already.
	if w := dev.Stats().BytesWritten; w < 32*1024 {
		t.Fatalf("only %d bytes written back under cache pressure", w)
	}
	// All data readable despite the tiny cache.
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("eviction write-back lost data")
	}
}

func TestDirtyDataInvisibleToDeviceUntilFlush(t *testing.T) {
	fs, dev := newSmallCacheFS(t, 1024)
	f, _ := fs.Create("/lazy")
	defer f.Close()
	before := dev.Stats().BytesWritten
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().BytesWritten - before; got != 0 {
		t.Fatalf("write-back cache wrote %d bytes to the device eagerly", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().BytesWritten - before; got < 8192 {
		t.Fatalf("Sync flushed only %d bytes", got)
	}
}

func TestFlushCoalescesContiguousPages(t *testing.T) {
	fs, dev := newSmallCacheFS(t, 1024)
	f, _ := fs.Create("/seq")
	defer f.Close()
	// 32 contiguous dirty pages...
	if _, err := f.WriteAt(make([]byte, 32*4096), 0); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats().Writes
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// ...must reach the device in very few merged writes (the extent
	// placer keeps them device-contiguous), not one write per page.
	writes := dev.Stats().Writes - before
	if writes > 4 {
		t.Fatalf("flush issued %d device writes for 32 contiguous pages", writes)
	}
}

func TestFlushRespectsMaxRunSize(t *testing.T) {
	fs, dev := newSmallCacheFS(t, 4096)
	f, _ := fs.Create("/huge")
	defer f.Close()
	const size = 12 << 20 // 12 MiB contiguous > 4 MiB max run
	if _, err := f.WriteAt(make([]byte, size), 0); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats().Writes
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writes := dev.Stats().Writes - before
	if writes < 3 {
		t.Fatalf("12 MiB flush used %d writes; max-run cap not applied?", writes)
	}
	if writes > 10 {
		t.Fatalf("12 MiB flush fragmented into %d writes", writes)
	}
}

func TestRMWFillOnPartialPageMiss(t *testing.T) {
	fs, _ := newSmallCacheFS(t, 2)
	f, _ := fs.Create("/rmw")
	defer f.Close()
	// Write a full page, force it out of cache, then partially overwrite.
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xAA}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Evict page 0 by dirtying two other pages (cache holds 2).
	f.WriteAt([]byte{1}, 8192)
	f.WriteAt([]byte{1}, 16384)
	// Partial overwrite of the evicted page must preserve its other bytes.
	if _, err := f.WriteAt([]byte{0xBB}, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0xAA)
		if i == 100 {
			want = 0xBB
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x (RMW fill lost data)", i, b, want)
		}
	}
}

func TestDeviceFailurePropagates(t *testing.T) {
	fs, dev := newSmallCacheFS(t, 1024)
	f, _ := fs.Create("/doomed")
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	dev.InjectFailure(true)
	if err := f.Sync(); err == nil {
		t.Fatal("Sync succeeded with a failed device")
	}
	dev.InjectFailure(false)
	// Dirty state must survive the failed flush and succeed on retry.
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after device recovery: %v", err)
	}
	got := make([]byte, 4096)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	if _, err := New(dev, Config{Name: "bad"}); err == nil {
		t.Fatal("config without placer accepted")
	}
	tiny := device.SSDProfile("tiny")
	tiny.Capacity = 1 << 20
	tdev := device.New(tiny, simclock.New())
	if _, err := New(tdev, Config{Name: "tiny", NewPlacer: NewExtentPlacer}); err == nil {
		t.Fatal("too-small device accepted")
	}
}

func TestPlacerAccounting(t *testing.T) {
	p := NewExtentPlacer(1 << 20)
	if p.TotalBytes() != 1<<20 || p.UsedBytes() != 0 {
		t.Fatalf("fresh placer: total=%d used=%d", p.TotalBytes(), p.UsedBytes())
	}
	run, err := p.Alloc(10000) // rounds up to 3 pages
	if err != nil {
		t.Fatal(err)
	}
	if run.Len != 12288 {
		t.Fatalf("granted %d bytes, want page-rounded 12288", run.Len)
	}
	if p.UsedBytes() != run.Len {
		t.Fatalf("used = %d", p.UsedBytes())
	}
	p.Free(run.DevOff, run.Len)
	if p.UsedBytes() != 0 {
		t.Fatal("free not accounted")
	}

	b := NewBitmapPlacer(1 << 20)
	r1, err := b.Alloc(1 << 20) // bitmap placer grants one page at a time
	if err != nil || r1.Len != PageSize {
		t.Fatalf("bitmap alloc: %+v, %v", r1, err)
	}
	b.MarkUsed(8*PageSize, 2*PageSize)
	if b.UsedBytes() != 3*PageSize {
		t.Fatalf("used = %d", b.UsedBytes())
	}
}

func TestJournalCompaction(t *testing.T) {
	// A small device gets the minimum 1 MiB journal; enough committed
	// metadata churn must trigger compaction, after which state and
	// recovery still work.
	prof := device.SSDProfile("small")
	prof.Capacity = 16 << 20
	dev := device.New(prof, simclock.New())
	fs, err := New(dev, Config{
		Name:        "compact@ssd",
		JournalFrac: 16, // 1 MiB (floor)
		GroupCommit: 512,
		NewPlacer:   NewExtentPlacer,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/churn")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// ~30k overwrites at rotating offsets: each queues a sizetime record
	// (~45 B); auto group-commits push >1 MiB through the journal.
	payload := []byte("abcd")
	for i := 0; i < 30000; i++ {
		if _, err := f.WriteAt(payload, int64(i%256)*4096); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if fs.jnl.UsedBytes() > fs.jnl.Size() {
		t.Fatalf("journal overflow: %d > %d", fs.jnl.UsedBytes(), fs.jnl.Size())
	}
	fs.Crash()
	if err := fs.Recover(); err != nil {
		t.Fatalf("recover after compaction: %v", err)
	}
	fi, err := fs.Stat("/churn")
	if err != nil || fi.Size != 255*4096+4 { // last write: 4 B at block 255
		t.Fatalf("stat after compaction+recovery: %+v, %v", fi, err)
	}
	got := make([]byte, 4)
	f2, err := fs.Open("/churn")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("data after compaction = %q", got)
	}
}

func newSweepTarget(t *testing.T) *fstest.SweepTarget {
	t.Helper()
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	cp := device.NewCrashPoint()
	dev.SetCrashPoint(cp)
	fs, err := New(dev, Config{
		Name:       "test@ssd0",
		Costs:      Costs{},
		CachePages: 64,
		NewPlacer:  NewExtentPlacer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fstest.SweepTarget{
		FS: fs,
		CP: cp,
		Remount: func() (vfs.FileSystem, error) {
			fs.Crash()
			if err := fs.Recover(); err != nil {
				return nil, err
			}
			return fs, nil
		},
		Check: func(vfs.FileSystem) error { return fs.CheckConsistency() },
	}
}

func TestCrashSweep(t *testing.T) {
	fstest.RunCrashSweep(t, newSweepTarget)
}

func TestCrashStorm(t *testing.T) {
	fstest.RunCrashStorm(t, newSweepTarget)
}
