// Package xfslite is the XFS-like native file system for the SSD tier
// (Sweeney, USENIX '96 lineage), built on the blockfs engine.
//
// What makes it "XFS" for the purposes of the paper's evaluation:
//
//   - Extent-based space management: a first-fit extent allocator grants
//     large contiguous runs, so files have few extents and the per-read
//     index traversal is short (fast cached-read path in experiment E3).
//   - Metadata-only write-ahead journaling with group commit; data writes
//     go straight to the device and are flushed in order at fsync.
//   - A DRAM page cache in front of the device for reads.
package xfslite

import (
	"time"

	"muxfs/internal/device"
	"muxfs/internal/fs/blockfs"
)

// DefaultCosts models XFS's compact extent-tree lookup path.
func DefaultCosts() blockfs.Costs {
	return blockfs.Costs{
		ReadOp:  210 * time.Nanosecond,
		WriteOp: 1900 * time.Nanosecond, // buffered-write syscall + delayed-alloc path
		PerPage: 35 * time.Nanosecond,
		MetaOp:  900 * time.Nanosecond,
	}
}

// New mounts a fresh xfslite on dev.
func New(name string, dev *device.Device) (*blockfs.FS, error) {
	return NewWithCosts(name, dev, DefaultCosts())
}

// NewWithCosts mounts xfslite with an explicit cost model (benchmark
// calibration hooks).
func NewWithCosts(name string, dev *device.Device, costs blockfs.Costs) (*blockfs.FS, error) {
	return blockfs.New(dev, blockfs.Config{
		Name:        name,
		Costs:       costs,
		JournalFrac: 32,
		GroupCommit: 16384,
		NewPlacer:   blockfs.NewExtentPlacer,
	})
}

// NewWithCache mounts xfslite with an explicit page-cache budget in bytes
// (0 = the 128 MiB default). Multi-tenant experiments shrink it: with the
// default every hot set fits in DRAM and tier placement stops mattering,
// which is not how a machine whose DRAM is shared by every tenant behaves.
func NewWithCache(name string, dev *device.Device, cacheBytes int64) (*blockfs.FS, error) {
	return blockfs.New(dev, blockfs.Config{
		Name:        name,
		Costs:       DefaultCosts(),
		JournalFrac: 32,    // metadata-only journal: small
		GroupCommit: 16384, // group commit is time-based in real XFS; batch big
		CachePages:  int(cacheBytes / blockfs.PageSize),
		NewPlacer:   blockfs.NewExtentPlacer,
	})
}
