package xfslite

import (
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/fs/blockfs"
	"muxfs/internal/fstest"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

func newFS(t *testing.T) *blockfs.FS {
	t.Helper()
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs, err := New("xfs@ssd0", dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem { return newFS(t) })
}

func TestCrashRecovery(t *testing.T) {
	fstest.RunCrashRecovery(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
		fs := newFS(t)
		return fs, func() vfs.FileSystem {
			fs.Crash()
			if err := fs.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			return fs
		}
	})
}

func TestCrashSweep(t *testing.T) {
	fstest.RunCrashSweep(t, func(t *testing.T) *fstest.SweepTarget {
		dev := device.New(device.SSDProfile("ssd0"), simclock.New())
		cp := device.NewCrashPoint()
		dev.SetCrashPoint(cp)
		fs, err := New("xfs@ssd0", dev)
		if err != nil {
			t.Fatal(err)
		}
		return &fstest.SweepTarget{
			FS: fs,
			CP: cp,
			Remount: func() (vfs.FileSystem, error) {
				fs.Crash()
				if err := fs.Recover(); err != nil {
					return nil, err
				}
				return fs, nil
			},
			Check: func(vfs.FileSystem) error { return fs.CheckConsistency() },
		}
	})
}

func TestCrashStorm(t *testing.T) {
	fstest.RunCrashStorm(t, func(t *testing.T) *fstest.SweepTarget {
		fs := newFS(t)
		return &fstest.SweepTarget{
			FS: fs,
			CP: device.NewCrashPoint(),
			Remount: func() (vfs.FileSystem, error) {
				fs.Crash()
				if err := fs.Recover(); err != nil {
					return nil, err
				}
				return fs, nil
			},
			Check: func(vfs.FileSystem) error { return fs.CheckConsistency() },
		}
	})
}

func TestLargeFileFewExtents(t *testing.T) {
	// The extent allocator must grant big contiguous runs: a 16 MiB
	// sequential write should produce very few extents.
	fs := newFS(t)
	f, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	chunk := make([]byte, 1<<20)
	for i := 0; i < 16; i++ {
		if _, err := f.WriteAt(chunk, int64(i)<<20); err != nil {
			t.Fatal(err)
		}
	}
	exts, err := f.Extents()
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) > 4 {
		t.Fatalf("sequential 16 MiB write fragmented into %d extents", len(exts))
	}
}

func TestCachedReadIsCheaperThanMiss(t *testing.T) {
	// Second read of the same page must hit DRAM, not the SSD — the effect
	// E3's Mux-over-XFS overhead ratio depends on.
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs, err := New("xfs@ssd0", dev)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/c")
	f.WriteAt(make([]byte, 4096), 0)
	f.Sync()
	f.Close()
	// Restart to drop the (write-populated) DRAM cache: reads start cold.
	fs.Crash()
	if err := fs.Recover(); err != nil {
		t.Fatal(err)
	}
	f, err = fs.Open("/c")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1)
	clk := dev.Clock()
	w := simclock.StartWatch(clk)
	f.ReadAt(buf, 10)
	missCost := w.Elapsed()
	w.Restart()
	f.ReadAt(buf, 10)
	hitCost := w.Elapsed()
	if hitCost*5 > missCost {
		t.Fatalf("cache hit %v not much cheaper than miss %v", hitCost, missCost)
	}
	stats := fs.CacheStats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("cache stats = %+v", stats)
	}
}

func TestGroupCommitBatchesJournal(t *testing.T) {
	// Many small writes then one Sync: the journal should see few commits
	// (group commit), not one per write.
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs, err := New("xfs@ssd0", dev)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/batch")
	defer f.Close()
	before := dev.Stats().Persists
	for i := 0; i < 100; i++ {
		f.WriteAt([]byte("x"), int64(i*8192))
	}
	mid := dev.Stats().Persists
	if mid-before > 2 {
		t.Fatalf("journal persisted %d times during unsynced writes", mid-before)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Persists == mid {
		t.Fatal("Sync did not persist anything")
	}
}

func TestConcurrency(t *testing.T) {
	fstest.RunConcurrency(t, func(t *testing.T) vfs.FileSystem { return newFS(t) })
}

func TestCrashTorture(t *testing.T) {
	fstest.RunCrashTorture(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
		fs := newFS(t)
		return fs, func() vfs.FileSystem {
			fs.Crash()
			if err := fs.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			return fs
		}
	}, 12)
}
