package novafs

import (
	"bytes"
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/fstest"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	dev := device.New(device.PMProfile("pmem0"), simclock.New())
	fs, err := New("nova@pmem0", dev, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem { return newFS(t) })
}

func TestCrashRecovery(t *testing.T) {
	fstest.RunCrashRecovery(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
		fs := newFS(t)
		return fs, func() vfs.FileSystem {
			fs.Crash()
			if err := fs.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			return fs
		}
	})
}

func TestCrashSweep(t *testing.T) {
	fstest.RunCrashSweep(t, func(t *testing.T) *fstest.SweepTarget {
		dev := device.New(device.PMProfile("pmem0"), simclock.New())
		cp := device.NewCrashPoint()
		dev.SetCrashPoint(cp)
		fs, err := New("nova@pmem0", dev, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		return &fstest.SweepTarget{
			FS: fs,
			CP: cp,
			Remount: func() (vfs.FileSystem, error) {
				fs.Crash()
				if err := fs.Recover(); err != nil {
					return nil, err
				}
				return fs, nil
			},
			Check: func(vfs.FileSystem) error { return fs.CheckConsistency() },
		}
	})
}

func TestCrashStorm(t *testing.T) {
	fstest.RunCrashStorm(t, func(t *testing.T) *fstest.SweepTarget {
		fs := newFS(t)
		return &fstest.SweepTarget{
			FS: fs,
			CP: device.NewCrashPoint(),
			Remount: func() (vfs.FileSystem, error) {
				fs.Crash()
				if err := fs.Recover(); err != nil {
					return nil, err
				}
				return fs, nil
			},
			Check: func(vfs.FileSystem) error { return fs.CheckConsistency() },
		}
	})
}

func TestRequiresByteAddressableDevice(t *testing.T) {
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	if _, err := New("nova@ssd0", dev, DefaultCosts()); err == nil {
		t.Fatal("novafs mounted on a block device")
	}
}

func TestUnsyncedWritesSurviveCrash(t *testing.T) {
	// NOVA persists synchronously: even *without* fsync, completed writes
	// survive a crash. This distinguishes it from the journaled FSes.
	fs := newFS(t)
	f, err := fs.Create("/n")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("no fsync needed")
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fs.Crash()
	if err := fs.Recover(); err != nil {
		t.Fatal(err)
	}
	f2, err := fs.Open("/n")
	if err != nil {
		t.Fatalf("file lost without fsync: %v", err)
	}
	defer f2.Close()
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("data lost without fsync: %q", got)
	}
}

func TestLogCompaction(t *testing.T) {
	// A small device gets a 1 MiB log; hammer it with metadata ops until
	// compaction must have happened, then verify state and recovery.
	clk := simclock.New()
	prof := device.PMProfile("pmem0")
	prof.Capacity = 8 << 20
	dev := device.New(prof, clk)
	fs, err := New("nova@pmem0", dev, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/churn")
	if err != nil {
		t.Fatal(err)
	}
	// Each write commits a record (~70 bytes); 20k writes >> 1 MiB of log.
	buf := []byte("x")
	for i := 0; i < 20000; i++ {
		if _, err := f.WriteAt(buf, int64(i%4096)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	f.Close()
	fs.Crash()
	if err := fs.Recover(); err != nil {
		t.Fatalf("recover after compaction: %v", err)
	}
	fi, err := fs.Stat("/churn")
	if err != nil || fi.Size != 4096 {
		t.Fatalf("post-compaction stat = %+v, %v", fi, err)
	}
}

func TestContiguousAllocationCoalesces(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("/big")
	defer f.Close()
	f.WriteAt(make([]byte, 64*PageSize), 0)
	exts, _ := f.Extents()
	if len(exts) != 1 {
		t.Fatalf("sequential write produced %d extents, want 1", len(exts))
	}
	if exts[0].Off != 0 || exts[0].Len != 64*PageSize {
		t.Fatalf("extent = %+v", exts[0])
	}
}

func TestNoSpace(t *testing.T) {
	clk := simclock.New()
	prof := device.PMProfile("tiny")
	prof.Capacity = 4 << 20 // 1 MiB log (min) + 3 MiB data
	dev := device.New(prof, clk)
	fs, err := New("nova@tiny", dev, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/fill")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	chunk := make([]byte, 1<<20)
	var werr error
	for i := 0; i < 8; i++ {
		if _, werr = f.WriteAt(chunk, int64(i)<<20); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("filled device without ErrNoSpace")
	}
	// The FS must stay usable after ENOSPC.
	if _, err := f.ReadAt(make([]byte, 10), 0); err != nil {
		t.Fatalf("read after ENOSPC: %v", err)
	}
}

func TestDAXReadChargesNoDRAMCache(t *testing.T) {
	// Two identical reads must cost the same: novafs has no page cache, so
	// there is no warm-up effect (that's the DAX property E3 relies on).
	fs := newFS(t)
	f, _ := fs.Create("/d")
	defer f.Close()
	f.WriteAt(make([]byte, 8192), 0)

	buf := make([]byte, 1)
	w := simclock.StartWatch(fs.clk)
	f.ReadAt(buf, 100)
	first := w.Elapsed()
	w.Restart()
	f.ReadAt(buf, 100)
	second := w.Elapsed()
	if first != second {
		t.Fatalf("read cost changed between identical reads: %v then %v", first, second)
	}
}

func TestCostHints(t *testing.T) {
	fs := newFS(t)
	if fs.ReadCostHint(4096) <= 0 || fs.WriteCostHint(4096) <= 0 {
		t.Fatal("cost hints not positive")
	}
	if fs.ReadCostHint(1<<20) <= fs.ReadCostHint(1) {
		t.Fatal("cost hint not size-sensitive")
	}
	if fs.DeviceName() != "pmem0" {
		t.Fatalf("DeviceName = %q", fs.DeviceName())
	}
}

func TestConcurrency(t *testing.T) {
	fstest.RunConcurrency(t, func(t *testing.T) vfs.FileSystem { return newFS(t) })
}

func TestCrashTorture(t *testing.T) {
	fstest.RunCrashTorture(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
		fs := newFS(t)
		return fs, func() vfs.FileSystem {
			fs.Crash()
			if err := fs.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			return fs
		}
	}, 12)
}
