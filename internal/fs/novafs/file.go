package novafs

import (
	"time"

	"muxfs/internal/journal"
	"muxfs/internal/vfs"
)

// file is an open novafs handle.
type file struct {
	fs     *FS
	path   string
	ino    uint64
	closed bool
}

var _ vfs.File = (*file)(nil)

// node returns the inode, or an error if the handle is closed or the file
// was removed underneath it.
func (f *file) node() (*inode, error) {
	if f.closed {
		return nil, vfs.ErrClosed
	}
	ino, ok := f.fs.inodes[f.ino]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return ino, nil
}

// Path returns the path the handle was opened with.
func (f *file) Path() string { return f.path }

// ReadAt implements io.ReaderAt with DAX semantics: data comes straight off
// the PM device.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("read", f.fs.name, f.path, err)
	}
	n, err := f.fs.readLocked(ino, p, off)
	if err != nil && n == 0 {
		return n, err // io.EOF or device error, unwrapped for io semantics
	}
	return n, err
}

// WriteAt writes in place and persists synchronously.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("write", f.fs.name, f.path, err)
	}
	return f.fs.writeLocked(ino, f.ino, p, off)
}

// Truncate sets the logical size.
func (f *file) Truncate(size int64) error {
	if size < 0 {
		return vfs.Errf("truncate", f.fs.name, f.path, vfs.ErrInvalid)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("truncate", f.fs.name, f.path, err)
	}
	return f.fs.truncateLocked(ino, f.ino, size)
}

// Sync is cheap: all novafs writes are already persisted (CLFLUSH model).
func (f *file) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.node(); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	f.fs.clk.Advance(f.fs.costs.MetaOp)
	return nil
}

// Close releases the handle.
func (f *file) Close() error {
	f.closed = true
	return nil
}

// Stat returns current metadata.
func (f *file) Stat() (vfs.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.FileInfo{}, vfs.Errf("stat", f.fs.name, f.path, err)
	}
	fi := ino.meta.Info(f.path)
	fi.Blocks = ino.ext.MappedBytes()
	return fi, nil
}

// Extents lists allocated runs in file-offset order, merging runs that are
// adjacent in file space (physical contiguity is irrelevant to callers).
func (f *file) Extents() ([]vfs.Extent, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return nil, vfs.Errf("extents", f.fs.name, f.path, err)
	}
	var out []vfs.Extent
	ino.ext.Walk(func(off, n int64, _ int64) bool {
		if len(out) > 0 && out[len(out)-1].End() == off {
			out[len(out)-1].Len += n
		} else {
			out = append(out, vfs.Extent{Off: off, Len: n})
		}
		return true
	})
	return out, nil
}

// PunchHole deallocates whole pages inside the range and zeroes the ragged
// edges in place.
func (f *file) PunchHole(off, n int64) error {
	if off < 0 || n < 0 {
		return vfs.Errf("punch", f.fs.name, f.path, vfs.ErrInvalid)
	}
	if n == 0 {
		return nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("punch", f.fs.name, f.path, err)
	}
	return f.fs.punchLocked(ino, f.ino, off, n)
}

// truncateLocked implements Truncate under fs.mu.
func (fs *FS) truncateLocked(ino *inode, inoNum uint64, size int64) error {
	fs.clk.Advance(fs.costs.MetaOp)
	now := fs.now()
	var recs []journal.Record
	if size < ino.meta.Size {
		var err error
		recs, err = fs.shrinkExtents(ino, inoNum, size, now)
		if err != nil {
			return err
		}
	}
	ino.meta.Size = size
	ino.meta.ModTime = now
	ino.meta.CTime = now
	recs = append(recs, recTruncate(inoNum, size, now))
	return fs.logCommit(recs...)
}

// shrinkExtents releases every mapping at or past newSize: whole tail pages
// (including the old EOF's partial page) are unmapped and freed, and the
// new boundary page — whose bytes past newSize must read zero if the file
// grows back — is rewritten copy-on-write. Zeroing it in place would
// corrupt the old contents during the crash window before the shrink record
// commits; the returned remap records must join that record's transaction.
// Caller holds fs.mu and updates ino.meta.Size afterwards.
func (fs *FS) shrinkExtents(ino *inode, inoNum uint64, newSize int64, now time.Duration) ([]journal.Record, error) {
	var recs []journal.Record
	if newSize%PageSize != 0 {
		zTo := newSize/PageSize*PageSize + PageSize
		if zTo > ino.meta.Size {
			zTo = ino.meta.Size
		}
		var err error
		recs, err = fs.cowZeroPage(ino, inoNum, newSize, zTo, newSize, now, recs)
		if err != nil {
			return nil, err
		}
	}
	fs.dropTail(ino, newSize)
	return recs, nil
}

// punchLocked implements PunchHole under fs.mu.
func (fs *FS) punchLocked(ino *inode, inoNum uint64, off, n int64) error {
	fs.clk.Advance(fs.costs.MetaOp)
	end := off + n
	if end > ino.meta.Size {
		end = ino.meta.Size
	}
	if end <= off {
		return nil
	}
	now := fs.now()
	// Ragged edges are rewritten copy-on-write (see truncateLocked) so the
	// old bytes stay intact until the punch transaction commits.
	var recs []journal.Record
	var err error
	firstWhole := (off + PageSize - 1) / PageSize * PageSize
	lastWhole := end / PageSize * PageSize
	if firstWhole > lastWhole { // range inside one page
		recs, err = fs.cowZeroPage(ino, inoNum, off, end, ino.meta.Size, now, recs)
	} else {
		if recs, err = fs.cowZeroPage(ino, inoNum, off, firstWhole, ino.meta.Size, now, recs); err == nil {
			recs, err = fs.cowZeroPage(ino, inoNum, lastWhole, end, ino.meta.Size, now, recs)
		}
	}
	if err != nil {
		return err
	}
	fs.freeRange(ino, off, end-off)
	ino.meta.ModTime = now
	ino.meta.CTime = now
	recs = append(recs, recPunch(inoNum, off, end-off, now))
	return fs.logCommit(recs...)
}

// cowZeroPage makes the mapped bytes of [zFrom, zTo) — a range inside one
// file page — read zero without touching the live page in place: a fresh PM
// page receives the preserved bytes (zeros over the cleared range), is
// persisted, and the remap records joining the caller's transaction are
// appended to recs. Until that transaction commits, the durable state still
// maps the untouched old page, so a crash at any instant leaves either the
// complete old contents or the complete new ones. Caller holds fs.mu.
func (fs *FS) cowZeroPage(ino *inode, inoNum uint64, zFrom, zTo int64,
	logicalSize int64, now time.Duration, recs []journal.Record) ([]journal.Record, error) {
	if zTo <= zFrom {
		return recs, nil
	}
	pageStart := zFrom / PageSize * PageSize
	segs := ino.ext.Segments(pageStart, PageSize)
	touched := false
	for _, seg := range segs {
		if !seg.Hole && seg.Off < zTo && seg.Off+seg.Len > zFrom {
			touched = true
			break
		}
	}
	if !touched {
		return recs, nil // holes already read zero
	}
	blk, err := fs.pages.Alloc()
	if err != nil {
		return recs, vfs.ErrNoSpace
	}
	buf := make([]byte, PageSize)
	for _, seg := range segs {
		if seg.Hole {
			continue
		}
		dst := buf[seg.Off-pageStart : seg.Off-pageStart+seg.Len]
		if _, err := fs.dev.ReadAt(dst, seg.Off+seg.Val); err != nil {
			fs.pages.FreeBlock(blk)
			return recs, err
		}
	}
	for i := zFrom; i < zTo; i++ {
		buf[i-pageStart] = 0
	}
	pm := fs.pmOff(blk)
	if _, err := fs.dev.WriteAt(buf, pm); err != nil {
		fs.pages.FreeBlock(blk)
		return recs, err
	}
	if err := fs.dev.Persist(pm, PageSize); err != nil {
		fs.pages.FreeBlock(blk)
		return recs, err
	}
	// Remap every previously mapped run of the page onto the copy and
	// release the old backing pages. The remap records replay before the
	// caller's truncate/punch record; OpExtent replay frees superseded
	// blocks the same way.
	newDelta := pm - pageStart
	for _, seg := range segs {
		if seg.Hole {
			continue
		}
		oldPM := seg.Off + seg.Val
		for b := oldPM / PageSize * PageSize; b < oldPM+seg.Len; b += PageSize {
			fs.pages.FreeBlock((b - fs.dataStart) / PageSize)
		}
		fs.dev.Discard(oldPM, seg.Len)
		ino.ext.Insert(seg.Off, seg.Len, newDelta)
		recs = append(recs, recExtent(inoNum, seg.Off, newDelta, seg.Len, logicalSize, now))
	}
	return recs, nil
}
