package novafs

import "muxfs/internal/vfs"

// file is an open novafs handle.
type file struct {
	fs     *FS
	path   string
	ino    uint64
	closed bool
}

var _ vfs.File = (*file)(nil)

// node returns the inode, or an error if the handle is closed or the file
// was removed underneath it.
func (f *file) node() (*inode, error) {
	if f.closed {
		return nil, vfs.ErrClosed
	}
	ino, ok := f.fs.inodes[f.ino]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return ino, nil
}

// Path returns the path the handle was opened with.
func (f *file) Path() string { return f.path }

// ReadAt implements io.ReaderAt with DAX semantics: data comes straight off
// the PM device.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("read", f.fs.name, f.path, err)
	}
	n, err := f.fs.readLocked(ino, p, off)
	if err != nil && n == 0 {
		return n, err // io.EOF or device error, unwrapped for io semantics
	}
	return n, err
}

// WriteAt writes in place and persists synchronously.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return 0, vfs.Errf("write", f.fs.name, f.path, err)
	}
	return f.fs.writeLocked(ino, f.ino, p, off)
}

// Truncate sets the logical size.
func (f *file) Truncate(size int64) error {
	if size < 0 {
		return vfs.Errf("truncate", f.fs.name, f.path, vfs.ErrInvalid)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("truncate", f.fs.name, f.path, err)
	}
	return f.fs.truncateLocked(ino, f.ino, size)
}

// Sync is cheap: all novafs writes are already persisted (CLFLUSH model).
func (f *file) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.node(); err != nil {
		return vfs.Errf("sync", f.fs.name, f.path, err)
	}
	f.fs.clk.Advance(f.fs.costs.MetaOp)
	return nil
}

// Close releases the handle.
func (f *file) Close() error {
	f.closed = true
	return nil
}

// Stat returns current metadata.
func (f *file) Stat() (vfs.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.FileInfo{}, vfs.Errf("stat", f.fs.name, f.path, err)
	}
	fi := ino.meta.Info(f.path)
	fi.Blocks = ino.ext.MappedBytes()
	return fi, nil
}

// Extents lists allocated runs in file-offset order, merging runs that are
// adjacent in file space (physical contiguity is irrelevant to callers).
func (f *file) Extents() ([]vfs.Extent, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return nil, vfs.Errf("extents", f.fs.name, f.path, err)
	}
	var out []vfs.Extent
	ino.ext.Walk(func(off, n int64, _ int64) bool {
		if len(out) > 0 && out[len(out)-1].End() == off {
			out[len(out)-1].Len += n
		} else {
			out = append(out, vfs.Extent{Off: off, Len: n})
		}
		return true
	})
	return out, nil
}

// PunchHole deallocates whole pages inside the range and zeroes the ragged
// edges in place.
func (f *file) PunchHole(off, n int64) error {
	if off < 0 || n < 0 {
		return vfs.Errf("punch", f.fs.name, f.path, vfs.ErrInvalid)
	}
	if n == 0 {
		return nil
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino, err := f.node()
	if err != nil {
		return vfs.Errf("punch", f.fs.name, f.path, err)
	}
	return f.fs.punchLocked(ino, f.ino, off, n)
}

// truncateLocked implements Truncate under fs.mu.
func (fs *FS) truncateLocked(ino *inode, inoNum uint64, size int64) error {
	fs.clk.Advance(fs.costs.MetaOp)
	now := fs.now()
	if size < ino.meta.Size {
		fs.freeRange(ino, size, ino.meta.Size-size)
		// Zero the ragged tail of the partial page so growing back reads
		// zeros.
		fs.zeroEdge(ino, size, ino.meta.Size)
	}
	ino.meta.Size = size
	ino.meta.ModTime = now
	ino.meta.CTime = now
	return fs.logCommit(recTruncate(inoNum, size, now))
}

// punchLocked implements PunchHole under fs.mu.
func (fs *FS) punchLocked(ino *inode, inoNum uint64, off, n int64) error {
	fs.clk.Advance(fs.costs.MetaOp)
	end := off + n
	if end > ino.meta.Size {
		end = ino.meta.Size
	}
	if end <= off {
		return nil
	}
	fs.freeRange(ino, off, end-off)
	// Zero the ragged edges still mapped.
	firstWhole := (off + PageSize - 1) / PageSize * PageSize
	lastWhole := end / PageSize * PageSize
	if firstWhole > lastWhole { // range inside one page
		fs.zeroEdge(ino, off, end)
	} else {
		fs.zeroEdge(ino, off, firstWhole)
		fs.zeroEdge(ino, lastWhole, end)
	}
	now := fs.now()
	ino.meta.ModTime = now
	ino.meta.CTime = now
	return fs.logCommit(recPunch(inoNum, off, end-off, now))
}

// zeroEdge writes zeros over mapped bytes of [from, to) (both inside one
// page in practice). Caller holds fs.mu.
func (fs *FS) zeroEdge(ino *inode, from, to int64) {
	if to <= from {
		return
	}
	for _, seg := range ino.ext.Segments(from, to-from) {
		if seg.Hole {
			continue
		}
		zeros := make([]byte, seg.Len)
		pm := seg.Off + seg.Val
		fs.dev.WriteAt(zeros, pm)
		fs.dev.Persist(pm, seg.Len)
	}
}
