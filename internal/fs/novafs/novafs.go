// Package novafs implements a NOVA-like file system for byte-addressable
// persistent memory (Xu & Swanson, FAST '16), the PM tier's native file
// system in the paper's Mux prototype.
//
// The properties that matter for the paper's evaluation are reproduced:
//
//   - DAX direct access: reads and writes go straight to the PM device with
//     no DRAM page cache in front.
//   - No logging tax for data: data is written in place to allocated PM
//     pages and made durable with CLFLUSH-style persist barriers (contrast
//     with Strata, which stages all data through an operation log first —
//     the write amplification §3.1 blames for Strata's PM throughput).
//   - A persisted metadata log: every namespace/extent mutation appends a
//     committed record to an on-device log (the per-inode-log analogue),
//     replayed on recovery; the log compacts in place when full.
package novafs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"muxfs/internal/alloc"
	"muxfs/internal/device"
	"muxfs/internal/extent"
	"muxfs/internal/fsbase"
	"muxfs/internal/journal"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

// PageSize is the file-to-PM mapping granule.
const PageSize = 4096

// Costs are the software-path costs novafs charges to the virtual clock,
// separate from device media costs. Calibrated so a cache-line read through
// NOVA lands near the paper's native-NOVA latency (see EXPERIMENTS.md).
type Costs struct {
	ReadOp  time.Duration // per read call: inode lookup + extent walk
	WriteOp time.Duration // per write call: log entry construction etc.
	PerPage time.Duration // per 4 KiB page touched: mapping check/alloc
	MetaOp  time.Duration // namespace operations
}

// DefaultCosts models NOVA's short, lock-light code paths.
func DefaultCosts() Costs {
	return Costs{
		ReadOp:  305 * time.Nanosecond,
		WriteOp: 350 * time.Nanosecond,
		PerPage: 30 * time.Nanosecond,
		MetaOp:  600 * time.Nanosecond,
	}
}

type inode struct {
	meta fsbase.Meta
	// ext maps file offsets to PM offsets. The stored value is the delta
	// (pmOff - fileOff), constant across a physically contiguous run, so
	// extent splits and merges stay correct.
	ext extent.Tree[int64]
}

// FS is a mounted novafs instance. Safe for concurrent use.
type FS struct {
	name  string
	dev   *device.Device
	clk   *simclock.Clock
	costs Costs

	mu         sync.Mutex
	ns         *fsbase.Namespace
	inodes     map[uint64]*inode
	pages      *alloc.Bitmap // data pages in [dataStart, capacity)
	log        *journal.Dual
	recovering bool // replay must not touch device data (pages may have been reused)

	dataStart int64
}

var _ vfs.FileSystem = (*FS)(nil)
var _ vfs.CrashRecoverer = (*FS)(nil)
var _ vfs.Profiled = (*FS)(nil)

// New mounts a fresh novafs on dev (which must be byte-addressable). A
// sixteenth of the device, at least 1 MiB, becomes the metadata log.
func New(name string, dev *device.Device, costs Costs) (*FS, error) {
	if !dev.Profile().ByteAddressable {
		return nil, fmt.Errorf("novafs: device %s is not byte-addressable", dev.Profile().Name)
	}
	logSize := dev.Capacity() / 16
	if logSize < 1<<20 {
		logSize = 1 << 20
	}
	if logSize > dev.Capacity()/2 {
		return nil, fmt.Errorf("novafs: device %s too small", dev.Profile().Name)
	}
	log, err := journal.NewDual(dev, 0, logSize)
	if err != nil {
		return nil, fmt.Errorf("novafs: %w", err)
	}
	fs := &FS{
		name:      name,
		dev:       dev,
		clk:       dev.Clock(),
		costs:     costs,
		dataStart: logSize,
		log:       log,
	}
	fs.resetState()
	return fs, nil
}

func (fs *FS) resetState() {
	fs.ns = fsbase.NewNamespace()
	fs.inodes = make(map[uint64]*inode)
	fs.pages = alloc.NewBitmap((fs.dev.Capacity() - fs.dataStart) / PageSize)
}

// Name identifies the instance.
func (fs *FS) Name() string { return fs.name }

// DeviceName returns the backing device's name.
func (fs *FS) DeviceName() string { return fs.dev.Profile().Name }

// Device exposes the backing device (benchmarks inspect its stats).
func (fs *FS) Device() *device.Device { return fs.dev }

// ReadCostHint estimates the cost of an n-byte read.
func (fs *FS) ReadCostHint(n int64) time.Duration {
	p := fs.dev.Profile()
	return fs.costs.ReadOp + p.ReadLatency + time.Duration(n*int64(time.Second)/p.ReadBandwidth)
}

// WriteCostHint estimates the cost of an n-byte write.
func (fs *FS) WriteCostHint(n int64) time.Duration {
	p := fs.dev.Profile()
	return fs.costs.WriteOp + p.WriteLatency + time.Duration(n*int64(time.Second)/p.WriteBandwidth)
}

func (fs *FS) now() time.Duration { return fs.clk.Now() }

// pmOff converts a data page number to a device offset.
func (fs *FS) pmOff(page int64) int64 { return fs.dataStart + page*PageSize }

// Create makes and opens a new regular file.
func (fs *FS) Create(path string) (vfs.File, error) {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.CreateFile(path, 0o644)
	if err != nil {
		return nil, vfs.Errf("create", fs.name, path, err)
	}
	now := fs.now()
	ino := &inode{meta: fsbase.Meta{Mode: 0o644, ModTime: now, ATime: now, CTime: now}}
	fs.inodes[node.Ino] = ino
	if err := fs.logCommit(recCreate(node.Ino, path, 0o644)); err != nil {
		// Roll back the namespace insert; the file never existed durably.
		fs.ns.Remove(path)
		delete(fs.inodes, node.Ino)
		return nil, vfs.Errf("create", fs.name, path, err)
	}
	return &file{fs: fs, path: path, ino: node.Ino}, nil
}

// Open opens an existing regular file.
func (fs *FS) Open(path string) (vfs.File, error) {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Lookup(path)
	if err != nil {
		return nil, vfs.Errf("open", fs.name, path, err)
	}
	if node.IsDir() {
		return nil, vfs.Errf("open", fs.name, path, vfs.ErrIsDir)
	}
	return &file{fs: fs, path: path, ino: node.Ino}, nil
}

// Remove deletes a file or empty directory and frees its pages.
func (fs *FS) Remove(path string) error {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Remove(path)
	if err != nil {
		return vfs.Errf("remove", fs.name, path, err)
	}
	if ino, ok := fs.inodes[node.Ino]; ok {
		fs.dropTail(ino, 0)
		delete(fs.inodes, node.Ino)
	}
	if err := fs.logCommit(recRemove(path)); err != nil {
		return vfs.Errf("remove", fs.name, path, err)
	}
	return nil
}

// Rename moves a file or directory.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldPath, newPath = vfs.CleanPath(oldPath), vfs.CleanPath(newPath)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	if _, err := fs.ns.Rename(oldPath, newPath); err != nil {
		return vfs.Errf("rename", fs.name, oldPath, err)
	}
	if err := fs.logCommit(recRename(oldPath, newPath)); err != nil {
		return vfs.Errf("rename", fs.name, oldPath, err)
	}
	return nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string) error {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Mkdir(path, 0o755)
	if err != nil {
		return vfs.Errf("mkdir", fs.name, path, err)
	}
	if err := fs.logCommit(recMkdir(node.Ino, path, 0o755)); err != nil {
		fs.ns.Remove(path)
		return vfs.Errf("mkdir", fs.name, path, err)
	}
	return nil
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	ents, err := fs.ns.ReadDir(vfs.CleanPath(path))
	if err != nil {
		return nil, vfs.Errf("readdir", fs.name, path, err)
	}
	return ents, nil
}

// Stat returns metadata for a path.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Lookup(path)
	if err != nil {
		return vfs.FileInfo{}, vfs.Errf("stat", fs.name, path, err)
	}
	return fs.statNode(path, node), nil
}

func (fs *FS) statNode(path string, node *fsbase.Node) vfs.FileInfo {
	if node.IsDir() {
		return vfs.FileInfo{Path: path, Mode: node.Mode}
	}
	ino := fs.inodes[node.Ino]
	fi := ino.meta.Info(path)
	fi.Blocks = ino.ext.MappedBytes()
	return fi
}

// SetAttr applies a partial metadata update.
func (fs *FS) SetAttr(path string, attr vfs.SetAttr) error {
	path = vfs.CleanPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clk.Advance(fs.costs.MetaOp)
	node, err := fs.ns.Lookup(path)
	if err != nil {
		return vfs.Errf("setattr", fs.name, path, err)
	}
	if node.IsDir() {
		return vfs.Errf("setattr", fs.name, path, vfs.ErrIsDir)
	}
	ino := fs.inodes[node.Ino]
	var recs []journal.Record
	if attr.Size != nil && *attr.Size < ino.meta.Size {
		var err error
		recs, err = fs.shrinkExtents(ino, node.Ino, *attr.Size, fs.now())
		if err != nil {
			return vfs.Errf("setattr", fs.name, path, err)
		}
	}
	if !ino.meta.Apply(attr, fs.now()) {
		return nil
	}
	if attr.Mode != nil {
		node.Mode = ino.meta.Mode
	}
	recs = append(recs, recSetAttr(node.Ino, &ino.meta))
	if err := fs.logCommit(recs...); err != nil {
		return vfs.Errf("setattr", fs.name, path, err)
	}
	return nil
}

// Truncate sets the file size by path.
func (fs *FS) Truncate(path string, size int64) error {
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Truncate(size)
}

// Statfs reports capacity accounting for the data region.
func (fs *FS) Statfs() (vfs.StatFS, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	total := fs.pages.Blocks() * PageSize
	used := fs.pages.Used() * PageSize
	return vfs.StatFS{
		Capacity:  total,
		Used:      used,
		Available: total - used,
		Files:     fs.ns.FileCount(),
	}, nil
}

// Sync is a near no-op: novafs persists data and log records synchronously
// (NOVA's CLFLUSH-on-write model), so there is no dirty state to flush.
func (fs *FS) Sync() error {
	fs.clk.Advance(fs.costs.MetaOp)
	return nil
}

// Crash simulates power loss on the backing device.
func (fs *FS) Crash() { fs.dev.Crash() }

// Recover rebuilds all in-memory state from the persisted log.
func (fs *FS) Recover() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.resetState()
	fs.recovering = true
	_, err := fs.log.Replay(fs.applyRecord)
	fs.recovering = false
	if err != nil {
		return fmt.Errorf("novafs %s: recover: %w", fs.name, err)
	}
	fs.scrubFreePages()
	return nil
}

// CheckConsistency cross-checks the extent maps against the page allocator:
// every mapped PM page must be marked used by exactly one file mapping, and
// every used page must be referenced by some mapping — no double-referenced
// and no leaked pages. The crash sweep runs it after every remount.
func (fs *FS) CheckConsistency() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	type ival struct{ off, end int64 }
	var ivals []ival
	referenced := make(map[int64]bool)
	for inoNum, ino := range fs.inodes {
		var err error
		ino.ext.Walk(func(off, n int64, delta int64) bool {
			pm := off + delta
			if pm < fs.dataStart || pm+n > fs.dev.Capacity() {
				err = fmt.Errorf("novafs %s: ino %d maps [%d,%d) outside the data region",
					fs.name, inoNum, pm, pm+n)
				return false
			}
			ivals = append(ivals, ival{pm, pm + n})
			for b := pm / PageSize * PageSize; b < pm+n; b += PageSize {
				referenced[(b-fs.dataStart)/PageSize] = true
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(ivals, func(i, j int) bool { return ivals[i].off < ivals[j].off })
	for i := 1; i < len(ivals); i++ {
		if ivals[i].off < ivals[i-1].end {
			return fmt.Errorf("novafs %s: PM bytes [%d,%d) double-referenced",
				fs.name, ivals[i].off, ivals[i-1].end)
		}
	}
	for pg := range referenced {
		if !fs.pages.IsUsed(pg) {
			return fmt.Errorf("novafs %s: page %d mapped but not allocated", fs.name, pg)
		}
	}
	for pg := int64(0); pg < fs.pages.Blocks(); pg++ {
		if fs.pages.IsUsed(pg) && !referenced[pg] {
			return fmt.Errorf("novafs %s: page %d allocated but unreferenced (leak)", fs.name, pg)
		}
	}
	return nil
}

// scrubFreePages zeroes every unallocated data page so stale contents of
// files deleted before the crash cannot leak into partially written fresh
// allocations. Caller holds fs.mu.
func (fs *FS) scrubFreePages() {
	for pg := int64(0); pg < fs.pages.Blocks(); pg++ {
		if !fs.pages.IsUsed(pg) {
			fs.dev.Discard(fs.pmOff(pg), PageSize)
		}
	}
}

// freeRange releases whole pages fully inside [off, off+n) and unmaps them.
// Partial edge pages keep their mapping; their bytes are zeroed by callers
// that need zero semantics. Caller holds fs.mu.
func (fs *FS) freeRange(ino *inode, off, n int64) {
	if n <= 0 {
		return
	}
	start := (off + PageSize - 1) / PageSize * PageSize // first whole page
	end := (off + n) / PageSize * PageSize              // end of last whole page
	for _, seg := range ino.ext.Segments(start, end-start) {
		if seg.Hole {
			continue
		}
		pmStart := seg.Off + seg.Val
		for b := pmStart; b < pmStart+seg.Len; b += PageSize {
			fs.pages.FreeBlock((b - fs.dataStart) / PageSize)
		}
		// During replay the device already holds the final data; a freed
		// page may have been reallocated to a newer file, so discarding
		// here would destroy it. Free pages are scrubbed after replay.
		if !fs.recovering {
			fs.dev.Discard(pmStart, seg.Len)
		}
	}
	ino.ext.Delete(start, end-start)
}

// dropTail unmaps and frees every page whose bytes all lie at or past
// newSize, including the partial page at the old EOF (which freeRange's
// whole-page rounding would keep mapped with stale contents). The page
// containing newSize itself survives when newSize is mid-page; shrink
// callers rewrite it copy-on-write. Caller holds fs.mu.
func (fs *FS) dropTail(ino *inode, newSize int64) {
	_, hi := ino.ext.Bounds()
	end := (hi + PageSize - 1) / PageSize * PageSize
	if end > newSize {
		fs.freeRange(ino, newSize, end-newSize)
	}
}

// logCommit writes records as one committed transaction, compacting the log
// first if it is full.
func (fs *FS) logCommit(recs ...journal.Record) error {
	tx := fs.log.Begin()
	for _, r := range recs {
		tx.Append(r)
	}
	err := tx.Commit()
	if errors.Is(err, journal.ErrFull) {
		if cerr := fs.compact(); cerr != nil {
			return cerr
		}
		tx = fs.log.Begin()
		for _, r := range recs {
			tx.Append(r)
		}
		err = tx.Commit()
	}
	return err
}

// compact rewrites the log as a snapshot of current state (NOVA's log GC).
// The dual journal makes it crash-atomic: the snapshot commits into the
// spare half before the superblock flips, so no crash point loses the log.
// Caller holds fs.mu.
func (fs *FS) compact() error {
	err := fs.log.Compact(func(tx *journal.Tx) {
		fs.ns.WalkAll(func(path string, node *fsbase.Node) {
			if node.IsDir() {
				tx.Append(recMkdir(node.Ino, path, node.Mode))
				return
			}
			ino := fs.inodes[node.Ino]
			tx.Append(recCreate(node.Ino, path, ino.meta.Mode))
			tx.Append(recSetAttr(node.Ino, &ino.meta))
			ino.ext.Walk(func(off, n int64, delta int64) bool {
				tx.Append(recExtent(node.Ino, off, delta, n, ino.meta.Size, ino.meta.ModTime))
				return true
			})
		})
	})
	if err != nil {
		return fmt.Errorf("novafs %s: log compaction: %w", fs.name, err)
	}
	return nil
}

// readLocked serves ReadAt under fs.mu.
func (fs *FS) readLocked(ino *inode, p []byte, off int64) (int, error) {
	fs.clk.Advance(fs.costs.ReadOp)
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= ino.meta.Size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if off+n > ino.meta.Size {
		n = ino.meta.Size - off
		short = true
	}
	pagesTouched := (off+n-1)/PageSize - off/PageSize + 1
	fs.clk.Advance(time.Duration(pagesTouched) * fs.costs.PerPage)
	for _, seg := range ino.ext.Segments(off, n) {
		dst := p[seg.Off-off : seg.Off-off+seg.Len]
		if seg.Hole {
			for i := range dst {
				dst[i] = 0
			}
			continue
		}
		if _, err := fs.dev.ReadAt(dst, seg.Off+seg.Val); err != nil {
			return 0, err
		}
	}
	ino.meta.ATime = fs.now()
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// writeLocked serves WriteAt under fs.mu: allocate missing pages, write in
// place, persist (DAX + CLFLUSH model), then log new mappings.
func (fs *FS) writeLocked(ino *inode, inoNum uint64, p []byte, off int64) (int, error) {
	fs.clk.Advance(fs.costs.WriteOp)
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	n := int64(len(p))
	firstPage := off / PageSize
	lastPage := (off + n - 1) / PageSize
	fs.clk.Advance(time.Duration(lastPage-firstPage+1) * fs.costs.PerPage)

	// Ensure every touched file page is mapped; remember new runs to log.
	type newRun struct{ foff, delta, length int64 }
	var newRuns []newRun
	for pg := firstPage; pg <= lastPage; pg++ {
		foff := pg * PageSize
		if _, _, ok := ino.ext.Lookup(foff); ok {
			continue
		}
		blk, err := fs.pages.Alloc()
		if err != nil {
			// Roll back pages allocated for this write.
			for _, r := range newRuns {
				fs.pages.FreeBlock((r.foff + r.delta - fs.dataStart) / PageSize)
				ino.ext.Delete(r.foff, r.length)
			}
			return 0, vfs.ErrNoSpace
		}
		delta := fs.pmOff(blk) - foff
		ino.ext.Insert(foff, PageSize, delta)
		// Coalesce bookkeeping for the log: extend the previous run when
		// physically contiguous.
		if len(newRuns) > 0 {
			lr := &newRuns[len(newRuns)-1]
			if lr.foff+lr.length == foff && lr.delta == delta {
				lr.length += PageSize
				continue
			}
		}
		newRuns = append(newRuns, newRun{foff, delta, PageSize})
	}

	// Write the payload segment by segment and persist each PM run.
	for _, seg := range ino.ext.Segments(off, n) {
		if seg.Hole {
			return 0, fmt.Errorf("novafs %s: unmapped page after allocation at %d", fs.name, seg.Off)
		}
		src := p[seg.Off-off : seg.Off-off+seg.Len]
		pm := seg.Off + seg.Val
		if _, err := fs.dev.WriteAt(src, pm); err != nil {
			return 0, err
		}
		if err := fs.dev.Persist(pm, seg.Len); err != nil {
			return 0, err
		}
	}

	now := fs.now()
	if off+n > ino.meta.Size {
		ino.meta.Size = off + n
	}
	ino.meta.ModTime = now

	// One committed transaction covers the new mappings and the size/mtime.
	recs := make([]journal.Record, 0, len(newRuns)+1)
	for _, r := range newRuns {
		recs = append(recs, recExtent(inoNum, r.foff, r.delta, r.length, ino.meta.Size, now))
	}
	if len(recs) == 0 {
		recs = append(recs, recSizeTime(inoNum, ino.meta.Size, now))
	}
	if err := fs.logCommit(recs...); err != nil {
		return 0, err
	}
	return int(n), nil
}
