package novafs

import (
	"fmt"
	"time"

	"muxfs/internal/fs/fsrec"
	"muxfs/internal/fsbase"
	"muxfs/internal/journal"
	"muxfs/internal/vfs"
)

// Record constructors: novafs logs fsrec ops to its on-PM metadata log.

func recCreate(ino uint64, path string, mode vfs.FileMode) journal.Record {
	return fsrec.Op{Type: fsrec.OpCreate, Ino: ino, Path: path, Mode: mode}.Record()
}

func recMkdir(ino uint64, path string, mode vfs.FileMode) journal.Record {
	return fsrec.Op{Type: fsrec.OpMkdir, Ino: ino, Path: path, Mode: mode}.Record()
}

func recRemove(path string) journal.Record {
	return fsrec.Op{Type: fsrec.OpRemove, Path: path}.Record()
}

func recRename(oldPath, newPath string) journal.Record {
	return fsrec.Op{Type: fsrec.OpRename, Path: oldPath, Path2: newPath}.Record()
}

func recExtent(ino uint64, foff, delta, n, size int64, mtime time.Duration) journal.Record {
	return fsrec.Op{Type: fsrec.OpExtent, Ino: ino, Off: foff, Delta: delta, N: n, Size: size, MTime: mtime}.Record()
}

func recSetAttr(ino uint64, m *fsbase.Meta) journal.Record {
	return fsrec.Op{
		Type: fsrec.OpSetAttr, Ino: ino,
		Size: m.Size, Mode: m.Mode, MTime: m.ModTime, ATime: m.ATime, CTime: m.CTime,
	}.Record()
}

func recSizeTime(ino uint64, size int64, mtime time.Duration) journal.Record {
	return fsrec.Op{Type: fsrec.OpSizeTime, Ino: ino, Size: size, MTime: mtime}.Record()
}

func recPunch(ino uint64, off, n int64, mtime time.Duration) journal.Record {
	return fsrec.Op{Type: fsrec.OpPunch, Ino: ino, Off: off, N: n, MTime: mtime}.Record()
}

func recTruncate(ino uint64, size int64, mtime time.Duration) journal.Record {
	return fsrec.Op{Type: fsrec.OpTruncate, Ino: ino, Size: size, MTime: mtime}.Record()
}

// applyRecord replays one committed log record during Recover. Caller holds
// fs.mu and has reset the in-memory state.
func (fs *FS) applyRecord(r journal.Record) error {
	op, err := fsrec.Parse(r)
	if err != nil {
		return err
	}
	switch op.Type {
	case fsrec.OpCreate:
		node, err := fs.ns.CreateFileIno(op.Path, op.Mode, op.Ino)
		if err != nil {
			return fmt.Errorf("replay create %q: %w", op.Path, err)
		}
		fs.inodes[node.Ino] = &inode{meta: fsbase.Meta{Mode: op.Mode}}

	case fsrec.OpMkdir:
		if _, err := fs.ns.Mkdir(op.Path, op.Mode); err != nil {
			return fmt.Errorf("replay mkdir %q: %w", op.Path, err)
		}
		fs.ns.BumpIno(op.Ino)

	case fsrec.OpRemove:
		node, err := fs.ns.Remove(op.Path)
		if err != nil {
			return fmt.Errorf("replay remove %q: %w", op.Path, err)
		}
		if ino, ok := fs.inodes[node.Ino]; ok {
			fs.dropTail(ino, 0)
			delete(fs.inodes, node.Ino)
		}

	case fsrec.OpRename:
		if _, err := fs.ns.Rename(op.Path, op.Path2); err != nil {
			return fmt.Errorf("replay rename %q->%q: %w", op.Path, op.Path2, err)
		}

	case fsrec.OpExtent:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay extent: unknown inode %d", op.Ino)
		}
		// A remap record (copy-on-write truncate/punch edge) supersedes live
		// mappings: release the blocks it replaces, as the foreground op did.
		for _, seg := range ino.ext.Segments(op.Off, op.N) {
			if seg.Hole {
				continue
			}
			pm := seg.Off + seg.Val
			for b := pm / PageSize * PageSize; b < pm+seg.Len; b += PageSize {
				fs.pages.FreeBlock((b - fs.dataStart) / PageSize)
			}
		}
		ino.ext.Insert(op.Off, op.N, op.Delta)
		pm := op.Off + op.Delta
		for b := pm; b < pm+op.N; b += PageSize {
			fs.pages.MarkUsed((b - fs.dataStart) / PageSize)
		}
		if op.Size > ino.meta.Size {
			ino.meta.Size = op.Size
		}
		ino.meta.ModTime = op.MTime

	case fsrec.OpSetAttr:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay setattr: unknown inode %d", op.Ino)
		}
		if op.Size < ino.meta.Size {
			fs.dropTail(ino, op.Size)
		}
		ino.meta.Size = op.Size
		ino.meta.Mode = op.Mode
		ino.meta.ModTime = op.MTime
		ino.meta.ATime = op.ATime
		ino.meta.CTime = op.CTime

	case fsrec.OpSizeTime:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay sizetime: unknown inode %d", op.Ino)
		}
		if op.Size > ino.meta.Size {
			ino.meta.Size = op.Size
		}
		ino.meta.ModTime = op.MTime

	case fsrec.OpPunch:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay punch: unknown inode %d", op.Ino)
		}
		fs.freeRange(ino, op.Off, op.N)
		ino.meta.ModTime = op.MTime

	case fsrec.OpTruncate:
		ino, ok := fs.inodes[op.Ino]
		if !ok {
			return fmt.Errorf("replay truncate: unknown inode %d", op.Ino)
		}
		if op.Size < ino.meta.Size {
			fs.dropTail(ino, op.Size)
		}
		ino.meta.Size = op.Size
		ino.meta.ModTime = op.MTime

	default:
		return fmt.Errorf("replay: unhandled op type %d", op.Type)
	}
	return nil
}
