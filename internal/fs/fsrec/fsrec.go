// Package fsrec defines the shared metadata log-record vocabulary used by
// every persistent component in the repository: novafs's inode log, the
// xfslite/extlite write-ahead journals, Strata's operation log, and Mux's
// own meta file. One codec, one replay grammar.
package fsrec

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"muxfs/internal/journal"
	"muxfs/internal/vfs"
)

// Op types.
const (
	OpCreate   = 1 // Ino, Mode, Path
	OpMkdir    = 2 // Ino, Mode, Path
	OpRemove   = 3 // Path
	OpRename   = 4 // Path -> Path2
	OpExtent   = 5 // Ino, Off, Delta, N, Size, MTime: map [Off,Off+N) at Off+Delta
	OpSetAttr  = 6 // Ino, Size, Mode, MTime, ATime, CTime
	OpSizeTime = 7 // Ino, Size, MTime
	OpPunch    = 8 // Ino, Off, N, MTime
	OpTruncate = 9 // Ino, Size, MTime
)

// Op is one decoded metadata operation.
type Op struct {
	Type  uint8
	Ino   uint64
	Path  string
	Path2 string
	Mode  vfs.FileMode
	Off   int64
	Delta int64
	N     int64
	Size  int64
	MTime time.Duration
	ATime time.Duration
	CTime time.Duration
}

// Record encodes the op as a journal record.
func (op Op) Record() journal.Record {
	switch op.Type {
	case OpCreate, OpMkdir:
		return journal.Record{Type: op.Type, A: int64(op.Ino), B: int64(op.Mode), Payload: []byte(op.Path)}
	case OpRemove:
		return journal.Record{Type: op.Type, Payload: []byte(op.Path)}
	case OpRename:
		return journal.Record{Type: op.Type, Payload: []byte(op.Path + "\x00" + op.Path2)}
	case OpExtent:
		p := make([]byte, 32)
		binary.LittleEndian.PutUint64(p[0:8], uint64(op.Delta))
		binary.LittleEndian.PutUint64(p[8:16], uint64(op.N))
		binary.LittleEndian.PutUint64(p[16:24], uint64(op.Size))
		binary.LittleEndian.PutUint64(p[24:32], uint64(op.MTime))
		return journal.Record{Type: op.Type, A: int64(op.Ino), B: op.Off, Payload: p}
	case OpSetAttr:
		p := make([]byte, 40)
		binary.LittleEndian.PutUint64(p[0:8], uint64(op.Size))
		binary.LittleEndian.PutUint64(p[8:16], uint64(op.Mode))
		binary.LittleEndian.PutUint64(p[16:24], uint64(op.MTime))
		binary.LittleEndian.PutUint64(p[24:32], uint64(op.ATime))
		binary.LittleEndian.PutUint64(p[32:40], uint64(op.CTime))
		return journal.Record{Type: op.Type, A: int64(op.Ino), Payload: p}
	case OpSizeTime:
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, uint64(op.MTime))
		return journal.Record{Type: op.Type, A: int64(op.Ino), B: op.Size, Payload: p}
	case OpPunch:
		p := make([]byte, 16)
		binary.LittleEndian.PutUint64(p[0:8], uint64(op.N))
		binary.LittleEndian.PutUint64(p[8:16], uint64(op.MTime))
		return journal.Record{Type: op.Type, A: int64(op.Ino), B: op.Off, Payload: p}
	case OpTruncate:
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, uint64(op.MTime))
		return journal.Record{Type: op.Type, A: int64(op.Ino), B: op.Size, Payload: p}
	default:
		panic(fmt.Sprintf("fsrec: unknown op type %d", op.Type))
	}
}

// Parse decodes a journal record back into an Op.
func Parse(r journal.Record) (Op, error) {
	op := Op{Type: r.Type}
	switch r.Type {
	case OpCreate, OpMkdir:
		op.Ino = uint64(r.A)
		op.Mode = vfs.FileMode(r.B)
		op.Path = string(r.Payload)
	case OpRemove:
		op.Path = string(r.Payload)
	case OpRename:
		parts := strings.SplitN(string(r.Payload), "\x00", 2)
		if len(parts) != 2 {
			return op, fmt.Errorf("fsrec: bad rename payload %q", r.Payload)
		}
		op.Path, op.Path2 = parts[0], parts[1]
	case OpExtent:
		if len(r.Payload) != 32 {
			return op, fmt.Errorf("fsrec: bad extent payload len %d", len(r.Payload))
		}
		op.Ino = uint64(r.A)
		op.Off = r.B
		op.Delta = int64(binary.LittleEndian.Uint64(r.Payload[0:8]))
		op.N = int64(binary.LittleEndian.Uint64(r.Payload[8:16]))
		op.Size = int64(binary.LittleEndian.Uint64(r.Payload[16:24]))
		op.MTime = time.Duration(binary.LittleEndian.Uint64(r.Payload[24:32]))
	case OpSetAttr:
		if len(r.Payload) != 40 {
			return op, fmt.Errorf("fsrec: bad setattr payload len %d", len(r.Payload))
		}
		op.Ino = uint64(r.A)
		op.Size = int64(binary.LittleEndian.Uint64(r.Payload[0:8]))
		op.Mode = vfs.FileMode(binary.LittleEndian.Uint64(r.Payload[8:16]))
		op.MTime = time.Duration(binary.LittleEndian.Uint64(r.Payload[16:24]))
		op.ATime = time.Duration(binary.LittleEndian.Uint64(r.Payload[24:32]))
		op.CTime = time.Duration(binary.LittleEndian.Uint64(r.Payload[32:40]))
	case OpSizeTime:
		if len(r.Payload) != 8 {
			return op, fmt.Errorf("fsrec: bad sizetime payload len %d", len(r.Payload))
		}
		op.Ino = uint64(r.A)
		op.Size = r.B
		op.MTime = time.Duration(binary.LittleEndian.Uint64(r.Payload))
	case OpPunch:
		if len(r.Payload) != 16 {
			return op, fmt.Errorf("fsrec: bad punch payload len %d", len(r.Payload))
		}
		op.Ino = uint64(r.A)
		op.Off = r.B
		op.N = int64(binary.LittleEndian.Uint64(r.Payload[0:8]))
		op.MTime = time.Duration(binary.LittleEndian.Uint64(r.Payload[8:16]))
	case OpTruncate:
		if len(r.Payload) != 8 {
			return op, fmt.Errorf("fsrec: bad truncate payload len %d", len(r.Payload))
		}
		op.Ino = uint64(r.A)
		op.Size = r.B
		op.MTime = time.Duration(binary.LittleEndian.Uint64(r.Payload))
	default:
		return op, fmt.Errorf("fsrec: unknown record type %d", r.Type)
	}
	return op, nil
}
