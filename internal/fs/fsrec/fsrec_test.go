package fsrec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"muxfs/internal/journal"
	"muxfs/internal/vfs"
)

func roundTrip(t *testing.T, op Op) Op {
	t.Helper()
	got, err := Parse(op.Record())
	if err != nil {
		t.Fatalf("Parse(%+v): %v", op, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	cases := []Op{
		{Type: OpCreate, Ino: 42, Path: "/a/b", Mode: 0o640},
		{Type: OpMkdir, Ino: 7, Path: "/dir", Mode: vfs.ModeDir | 0o755},
		{Type: OpRemove, Path: "/gone"},
		{Type: OpRename, Path: "/old", Path2: "/new"},
		{Type: OpExtent, Ino: 9, Off: 8192, Delta: 1 << 20, N: 4096, Size: 123456, MTime: 99 * time.Microsecond},
		{Type: OpSetAttr, Ino: 3, Size: 77, Mode: 0o600, MTime: time.Second, ATime: 2 * time.Second, CTime: 3 * time.Second},
		{Type: OpSizeTime, Ino: 5, Size: 1 << 40, MTime: time.Hour},
		{Type: OpPunch, Ino: 6, Off: 4096, N: 8192, MTime: time.Minute},
		{Type: OpTruncate, Ino: 8, Size: 0, MTime: time.Millisecond},
	}
	for _, op := range cases {
		if got := roundTrip(t, op); !reflect.DeepEqual(got, op) {
			t.Errorf("round trip changed op:\n in: %+v\nout: %+v", op, got)
		}
	}
}

func TestNegativeDeltaSurvives(t *testing.T) {
	// Deltas are routinely negative (device offset below file offset).
	op := Op{Type: OpExtent, Ino: 1, Off: 1 << 30, Delta: -(1 << 29), N: 4096, Size: 1 << 30, MTime: 1}
	if got := roundTrip(t, op); got.Delta != op.Delta {
		t.Fatalf("delta %d -> %d", op.Delta, got.Delta)
	}
}

func TestPathsWithFunnyCharacters(t *testing.T) {
	op := Op{Type: OpRename, Path: "/with space/αβγ", Path2: "/tab\tand✓"}
	got := roundTrip(t, op)
	if got.Path != op.Path || got.Path2 != op.Path2 {
		t.Fatalf("paths mangled: %+v", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []journal.Record{
		{Type: 200},                             // unknown type
		{Type: OpExtent, Payload: []byte{1, 2}}, // short payload
		{Type: OpSetAttr, Payload: make([]byte, 39)},
		{Type: OpSizeTime, Payload: nil},
		{Type: OpPunch, Payload: make([]byte, 15)},
		{Type: OpTruncate, Payload: make([]byte, 9)},
		{Type: OpRename, Payload: []byte("no-separator")},
	}
	for _, r := range bad {
		if _, err := Parse(r); err == nil {
			t.Errorf("Parse accepted garbage record type %d", r.Type)
		}
	}
}

func TestEncodePanicsOnUnknownType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Record() on unknown type did not panic")
		}
	}()
	Op{Type: 99}.Record()
}

// TestQuickRoundTrip fuzzes extent records (the hot record type) through
// the codec.
func TestQuickRoundTrip(t *testing.T) {
	f := func(ino uint64, off, delta, n, size int64, mtime int64) bool {
		op := Op{Type: OpExtent, Ino: ino, Off: off, Delta: delta, N: n, Size: size, MTime: time.Duration(mtime)}
		got, err := Parse(op.Record())
		return err == nil && reflect.DeepEqual(got, op)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
