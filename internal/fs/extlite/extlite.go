// Package extlite is the Ext4-like native file system for the HDD tier
// (Mathur et al., OLS '07 lineage), built on the blockfs engine.
//
// What makes it "ext4" for the purposes of the paper's evaluation:
//
//   - Block-mapped allocation: a next-fit block bitmap grants one 4 KiB
//     block per allocation (goal allocation keeps sequential files mostly
//     contiguous, but indexing is per-block).
//   - A heavier per-read software path modeling indirect block-pointer
//     traversal and buffer-head management — this is why the Mux
//     indirection is only a small *relative* overhead on the HDD tier in
//     experiment E3.
//   - An ordered-mode journal with group commit (JBD2 analogue): data is
//     flushed to the device before the metadata transaction commits.
//   - A DRAM page cache in front of the device.
package extlite

import (
	"time"

	"muxfs/internal/device"
	"muxfs/internal/fs/blockfs"
)

// DefaultCosts models ext4's longer block-map and buffer-head path.
func DefaultCosts() blockfs.Costs {
	return blockfs.Costs{
		ReadOp:  3775 * time.Nanosecond,
		WriteOp: 2600 * time.Nanosecond,
		PerPage: 180 * time.Nanosecond,
		MetaOp:  2500 * time.Nanosecond,
	}
}

// New mounts a fresh extlite on dev.
func New(name string, dev *device.Device) (*blockfs.FS, error) {
	return NewWithCosts(name, dev, DefaultCosts())
}

// NewWithCosts mounts extlite with an explicit cost model (benchmark
// calibration hooks).
func NewWithCosts(name string, dev *device.Device, costs blockfs.Costs) (*blockfs.FS, error) {
	return blockfs.New(dev, blockfs.Config{
		Name:        name,
		Costs:       costs,
		JournalFrac: 16,    // ordered journal sized like a JBD2 region
		GroupCommit: 16384, // JBD2 commits on a timer; batch big
		NewPlacer:   blockfs.NewBitmapPlacer,
	})
}

// NewWithCache mounts extlite with an explicit page-cache budget in bytes
// (0 = the 128 MiB default). Multi-tenant experiments shrink it: with the
// default every hot set fits in DRAM and tier placement stops mattering,
// which is not how a machine whose DRAM is shared by every tenant behaves.
func NewWithCache(name string, dev *device.Device, cacheBytes int64) (*blockfs.FS, error) {
	return blockfs.New(dev, blockfs.Config{
		Name:        name,
		Costs:       DefaultCosts(),
		JournalFrac: 16,
		GroupCommit: 16384,
		CachePages:  int(cacheBytes / blockfs.PageSize),
		NewPlacer:   blockfs.NewBitmapPlacer,
	})
}
