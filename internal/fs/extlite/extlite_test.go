package extlite

import (
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/fs/blockfs"
	"muxfs/internal/fstest"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

func newFS(t *testing.T) *blockfs.FS {
	t.Helper()
	prof := device.HDDProfile("hdd0")
	prof.Capacity = 1 << 30 // keep tests fast
	dev := device.New(prof, simclock.New())
	fs, err := New("ext4@hdd0", dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem { return newFS(t) })
}

func TestCrashRecovery(t *testing.T) {
	fstest.RunCrashRecovery(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
		fs := newFS(t)
		return fs, func() vfs.FileSystem {
			fs.Crash()
			if err := fs.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			return fs
		}
	})
}

func TestCrashSweep(t *testing.T) {
	fstest.RunCrashSweep(t, func(t *testing.T) *fstest.SweepTarget {
		prof := device.HDDProfile("hdd0")
		prof.Capacity = 1 << 30
		dev := device.New(prof, simclock.New())
		cp := device.NewCrashPoint()
		dev.SetCrashPoint(cp)
		fs, err := New("ext4@hdd0", dev)
		if err != nil {
			t.Fatal(err)
		}
		return &fstest.SweepTarget{
			FS: fs,
			CP: cp,
			Remount: func() (vfs.FileSystem, error) {
				fs.Crash()
				if err := fs.Recover(); err != nil {
					return nil, err
				}
				return fs, nil
			},
			Check: func(vfs.FileSystem) error { return fs.CheckConsistency() },
		}
	})
}

func TestCrashStorm(t *testing.T) {
	fstest.RunCrashStorm(t, func(t *testing.T) *fstest.SweepTarget {
		fs := newFS(t)
		return &fstest.SweepTarget{
			FS: fs,
			CP: device.NewCrashPoint(),
			Remount: func() (vfs.FileSystem, error) {
				fs.Crash()
				if err := fs.Recover(); err != nil {
					return nil, err
				}
				return fs, nil
			},
			Check: func(vfs.FileSystem) error { return fs.CheckConsistency() },
		}
	})
}

func TestSequentialStaysMostlyContiguous(t *testing.T) {
	// Next-fit goal allocation: a sequential write on a fresh FS should
	// produce one merged extent even though allocation is block-at-a-time.
	fs := newFS(t)
	f, err := fs.Create("/seq")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 64*4096), 0); err != nil {
		t.Fatal(err)
	}
	exts, err := f.Extents()
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 {
		t.Fatalf("sequential write produced %d extents", len(exts))
	}
}

func TestReadPathSlowerThanXFSLite(t *testing.T) {
	// extlite's block-map traversal must cost more per cached read than an
	// extent lookup — the property experiment E3 turns into the small
	// relative Mux overhead on HDD.
	ext := DefaultCosts()
	if ext.ReadOp < 10*140 { // >= 10x xfslite's 140ns
		t.Fatalf("extlite ReadOp %v suspiciously fast", ext.ReadOp)
	}
}

func TestOrderedModeDataPersistedBeforeCommit(t *testing.T) {
	// After Sync, committed metadata must never reference volatile data:
	// crash immediately after Sync and verify contents, many times while
	// interleaving unsynced writes.
	fs := newFS(t)
	f, err := fs.Create("/ordered")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("must-not-be-zeros")
	for round := 0; round < 5; round++ {
		off := int64(round) * 8192
		if _, err := f.WriteAt(payload, off); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		fs.Crash()
		if err := fs.Recover(); err != nil {
			t.Fatal(err)
		}
		f, err = fs.Open("/ordered")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := make([]byte, len(payload))
		if _, err := f.ReadAt(got, off); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("round %d: committed metadata references lost data: %q", round, got)
		}
	}
	f.Close()
}

func TestConcurrency(t *testing.T) {
	fstest.RunConcurrency(t, func(t *testing.T) vfs.FileSystem { return newFS(t) })
}

func TestCrashTorture(t *testing.T) {
	fstest.RunCrashTorture(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
		fs := newFS(t)
		return fs, func() vfs.FileSystem {
			fs.Crash()
			if err := fs.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			return fs
		}
	}, 12)
}
