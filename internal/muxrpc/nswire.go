package muxrpc

import (
	"time"

	"muxfs/internal/vfs"
)

// Namespace protocol ("muxns"): the second, newer wire protocol in this
// package. The original MuxTier protocol (net/rpc) exports one *tier* to a
// remote Mux; muxns exports a whole Mux *namespace* to many clients, and is
// shaped for a production front end rather than a point-to-point proxy:
//
//   - One gob stream per connection carries NSRequest/NSResponse pairs
//     matched by Seq, each inside a length-prefixed frame (nsframe.go) so
//     either side can reject an oversized frame from its 4-byte header —
//     before the decoder allocates anything for it. Responses may return
//     in any order — the server pipelines them as workers finish — so a
//     slow readdir never head-of-line blocks a fast stat on the same
//     socket.
//   - A request may carry a *batch* of sub-operations (reads/writes tagged
//     with caller-chosen ids). The server coalesces adjacent sub-ops per
//     handle into single downward dispatches and replies per sub-op.
//   - The server can refuse admission (queue past high watermark, client
//     over its rate budget) with codeBusy plus a retry-after hint; see
//     BusyError. A busy reply means the op did not execute.
//
// The server side lives in internal/server; NSClient (nsclient.go) is the
// client. Handles are scoped to the connection that opened them, so a
// vanished client can never leak server-side handles.

// NSOp enumerates the namespace operations.
type NSOp uint8

const (
	// NSHello is the handshake; it must be the first frame on a
	// connection and carries the protocol version in N.
	NSHello NSOp = iota
	NSOpen
	NSCreate
	NSClose
	NSRead
	NSWrite
	NSTruncateHandle
	NSPunch
	NSSyncHandle
	NSStatHandle
	NSExtents
	NSStat
	NSSetAttr
	NSTruncate
	NSReadDir
	NSRename
	NSRemove
	NSMkdir
	NSStatfs
	NSSync
	NSBatch
	nsOpCount
)

var nsOpNames = [nsOpCount]string{
	"hello", "open", "create", "close", "read", "write",
	"truncate_handle", "punch", "sync_handle", "stat_handle", "extents",
	"stat", "setattr", "truncate", "readdir", "rename", "remove",
	"mkdir", "statfs", "sync", "batch",
}

// String names the op for metrics labels and errors.
func (op NSOp) String() string {
	if int(op) < len(nsOpNames) {
		return nsOpNames[op]
	}
	return "invalid"
}

// NSProtoVersion is the muxns protocol version; the hello frame carries it
// and the server rejects mismatches. Version 2 added the length-prefixed
// frame layer and the negotiated MaxData payload cap.
const NSProtoVersion = 2

// NSOpCount reports the size of the op space, for per-op instrument
// tables indexed by NSOp.
func NSOpCount() int { return int(nsOpCount) }

// EncodeStatus maps an error to its wire (code, message) pair — codeOK for
// nil — so the namespace server can fill responses without re-implementing
// the sentinel table.
func EncodeStatus(err error) (int, string) { return encodeErr(err) }

// NSBusy builds a busy rejection (admission control) with a retry-after
// hint in milliseconds.
func NSBusy(seq uint64, retryAfterMs int64) *NSResponse {
	return &NSResponse{Seq: seq, Code: codeBusy, Msg: ErrBusy.Error(), RetryAfterMs: retryAfterMs}
}

// ToSetAttr unflattens the wire form back to the vfs partial update.
func (a SetAttrArgs) ToSetAttr() vfs.SetAttr {
	var attr vfs.SetAttr
	if a.HasSize {
		attr.Size = &a.Size
	}
	if a.HasMode {
		m := vfs.FileMode(a.Mode)
		attr.Mode = &m
	}
	if a.HasModTime {
		d := time.Duration(a.ModTime)
		attr.ModTime = &d
	}
	if a.HasATime {
		d := time.Duration(a.ATime)
		attr.ATime = &d
	}
	return attr
}

// NSRequest is one framed namespace request. Fields are a union over the
// op set; unused fields stay zero (gob encodes them compactly).
type NSRequest struct {
	Seq uint64
	Op  NSOp

	Path  string // open/create/stat/setattr/truncate/readdir/remove/mkdir, rename source
	Path2 string // rename destination

	Handle uint64 // handle ops
	Off    int64  // read/write/punch
	N      int64  // read length, punch length, hello protocol version, truncate size

	Data []byte // write payload

	Attr SetAttrArgs // setattr (Path field unused; flattened like the tier protocol)

	Batch []NSSubOp // batch sub-operations
}

// NSSubOp is one read or write inside a batch frame. ID is chosen by the
// caller and echoed in the matching NSSubResult; results may be reordered.
type NSSubOp struct {
	ID     uint32
	Op     NSOp // NSRead or NSWrite
	Handle uint64
	Off    int64
	N      int64  // read length
	Data   []byte // write payload
}

// NSResponse is one framed reply, matched to its request by Seq.
type NSResponse struct {
	Seq  uint64
	Code int
	Msg  string

	// RetryAfterMs is the backoff hint accompanying codeBusy.
	RetryAfterMs int64

	Handle  uint64
	N       int64
	EOF     bool
	Data    []byte
	Info    vfs.FileInfo
	Entries []vfs.DirEntry
	Stat    vfs.StatFS
	Extents []vfs.Extent

	Batch []NSSubResult

	// Hello reply: server name, negotiated limits. MaxData caps one
	// request's payload (read length, write payload, batch payload sum);
	// the server rejects frames past it with vfs.ErrInvalid, so clients
	// chunk larger transfers.
	ServerName string
	MaxBatch   int
	MaxData    int64
}

// NSSubResult is one sub-op's outcome.
type NSSubResult struct {
	ID   uint32
	Code int
	Msg  string
	N    int64
	EOF  bool
	Data []byte
	// Coalesced marks a sub-op the server served from a merged dispatch
	// (several adjacent sub-ops collapsed into one downward I/O).
	Coalesced bool
}

// Err decodes the response status, reconstructing BusyError hints.
func (r *NSResponse) Err() error {
	if r.Code == codeBusy {
		return &BusyError{RetryAfter: time.Duration(r.RetryAfterMs) * time.Millisecond}
	}
	return decodeErr(r.Code, r.Msg)
}

// Err decodes the sub-result status.
func (r *NSSubResult) Err() error { return decodeErr(r.Code, r.Msg) }
