package muxrpc

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"muxfs/internal/device"
	"muxfs/internal/fs/xfslite"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

// gateFS blocks selected operations on a channel so tests can hold RPC
// calls in flight deterministically.
type gateFS struct {
	vfs.FileSystem
	mu sync.Mutex
	ch chan struct{}
}

func (g *gateFS) arm() {
	g.mu.Lock()
	g.ch = make(chan struct{})
	g.mu.Unlock()
}

func (g *gateFS) release() {
	g.mu.Lock()
	ch := g.ch
	g.ch = nil
	g.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

func (g *gateFS) wait() {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

func (g *gateFS) Rename(oldPath, newPath string) error {
	g.wait()
	return g.FileSystem.Rename(oldPath, newPath)
}

func (g *gateFS) Open(path string) (vfs.File, error) {
	f, err := g.FileSystem.Open(path)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}

func (g *gateFS) Create(path string) (vfs.File, error) {
	f, err := g.FileSystem.Create(path)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}

type gateFile struct {
	vfs.File
	g *gateFS
}

func (f *gateFile) ReadAt(p []byte, off int64) (int, error) {
	f.g.wait()
	return f.File.ReadAt(p, off)
}

// startGated serves a gated xfslite and returns the gate, server,
// listener, and a connected client.
func startGated(t *testing.T, poolSize int) (*gateFS, *Server, net.Listener, *Client) {
	t.Helper()
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs, err := xfslite.New("xfs@gated", dev)
	if err != nil {
		t.Fatal(err)
	}
	g := &gateFS{FileSystem: fs}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := NewServer(g)
	go srv.Serve(l)
	c, err := DialPool("tcp", l.Addr().String(), poolSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return g, srv, l, c
}

func waitTierInFlight(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.InFlight() < n {
		t.Fatalf("in-flight never reached %d (at %d)", n, srv.InFlight())
	}
}

// TestDrainUnderLoad checks the graceful-shutdown ordering: listener
// closed first, then Drain waits for in-flight calls to finish before
// severing connections — no call is cut mid-execution.
func TestDrainUnderLoad(t *testing.T) {
	g, srv, l, c := startGated(t, 2)
	f, err := c.Create("/d")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}

	g.arm()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			buf := make([]byte, 5)
			_, err := f.ReadAt(buf, 0)
			done <- err
		}()
	}
	waitTierInFlight(t, srv, 4)

	l.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		g.release()
	}()
	if cut := srv.Drain(5 * time.Second); cut != 0 {
		t.Fatalf("drain cut %d in-flight calls", cut)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("in-flight call failed during drain: %v", err)
		}
	}
}

// TestSeverMidCallIdempotent cuts the connection under an executing read;
// the client must reconnect and retry it to success (tier handles live in
// the server, so they survive the reconnect).
func TestSeverMidCallIdempotent(t *testing.T) {
	g, srv, _, c := startGated(t, 1)
	f, err := c.Create("/mid")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}

	g.arm()
	done := make(chan error, 1)
	var got []byte
	go func() {
		buf := make([]byte, 6)
		n, err := f.ReadAt(buf, 0)
		got = buf[:n]
		done <- err
	}()
	waitTierInFlight(t, srv, 1)
	srv.Drain(0) // severs the connection with the read still executing
	g.release()
	if err := <-done; err != nil {
		t.Fatalf("idempotent read did not survive severed connection: %v", err)
	}
	if string(got) != "abcdef" {
		t.Fatalf("read %q", got)
	}
	st := c.PoolStats()
	if st.Reconnects == 0 || st.Retries == 0 {
		t.Fatalf("reconnect/retry not counted: %+v", st)
	}
}

// TestSeverMidCallNonIdempotent cuts the connection under an executing
// rename; the client must surface the typed error — never silently replay
// an op that may have applied.
func TestSeverMidCallNonIdempotent(t *testing.T) {
	g, srv, _, c := startGated(t, 1)
	f, err := c.Create("/n1")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g.arm()
	done := make(chan error, 1)
	go func() { done <- c.Rename("/n1", "/n2") }()
	waitTierInFlight(t, srv, 1)
	srv.Drain(0)
	g.release()
	err = <-done
	if !errors.Is(err, ErrNonIdempotent) {
		t.Fatalf("rename cut mid-call: got %v, want ErrNonIdempotent", err)
	}
	var ne *NonIdempotentError
	if !errors.As(err, &ne) || ne.Method != "MuxTier.Rename" {
		t.Fatalf("typed error missing method: %v", err)
	}
	// The server applied the rename before the cut; the caller's recovery
	// path — re-check state with an idempotent op — must see that.
	if _, err := c.Stat("/n2"); err != nil {
		t.Fatalf("stat after ambiguous rename: %v", err)
	}
}

// TestPoolStatsCounting exercises the dial/call counters end to end.
func TestPoolStatsCounting(t *testing.T) {
	_, srv, _, c := startGated(t, 3)
	if _, err := c.Stat("/"); err != nil {
		t.Fatal(err)
	}
	st := c.PoolStats()
	if st.Slots != 3 || st.Dials != 3 || st.Reconnects != 0 {
		t.Fatalf("fresh pool stats: %+v", st)
	}
	if st.Calls == 0 {
		t.Fatalf("calls not counted: %+v", st)
	}
	if got := len(st.InFlight); got != 3 {
		t.Fatalf("in-flight slots = %d", got)
	}

	srv.Drain(0) // sever; next call redials
	if _, err := c.Stat("/"); err != nil {
		t.Fatal(err)
	}
	st = c.PoolStats()
	if st.Reconnects == 0 || st.Dials < 4 {
		t.Fatalf("reconnect not counted: %+v", st)
	}

	dials, dialErrs, hsFails := Totals()
	if dials < st.Dials {
		t.Fatalf("package totals behind client: %d < %d", dials, st.Dials)
	}
	_ = dialErrs
	_ = hsFails
}
