package muxrpc

import (
	"net"
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/fs/xfslite"
	"muxfs/internal/fstest"
	"muxfs/internal/simclock"
	"muxfs/internal/vfs"
)

// newRemoteFS serves a fresh xfslite over a loopback TCP connection and
// returns the dialed client.
func newRemoteFS(t *testing.T) *Client {
	t.Helper()
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs, err := xfslite.New("xfs@remote", dev)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := NewServer(fs)
	go srv.Serve(l)

	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestConformance runs the full VFS contract across the RPC boundary —
// the property Distributed Mux (§4) depends on: a remote file system is
// indistinguishable from a local one at the interface.
func TestConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem { return newRemoteFS(t) })
}

func TestRemoteName(t *testing.T) {
	c := newRemoteFS(t)
	if c.Name() != "remote:xfs@remote" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestClosedRemoteHandle(t *testing.T) {
	c := newRemoteFS(t)
	f, err := c.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestConcurrency(t *testing.T) {
	fstest.RunConcurrency(t, func(t *testing.T) vfs.FileSystem { return newRemoteFS(t) })
}

func TestRemoteCrashRecovery(t *testing.T) {
	fstest.RunCrashRecovery(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
		c := newRemoteFS(t)
		return c, func() vfs.FileSystem {
			c.Crash()
			if err := c.Recover(); err != nil {
				t.Fatalf("remote recover: %v", err)
			}
			return c
		}
	})
}
