// Package muxrpc implements Distributed Mux (paper §4): a vfs.FileSystem
// proxied over net/rpc, so "a set of machines mounting traditional file
// systems can be integrated into a distributed storage system" — the remote
// machine's file system registers with a local Mux as just another tier.
//
// Server wraps any vfs.FileSystem and serves it on a listener; Client dials
// and implements vfs.FileSystem/vfs.File locally. Sentinel errors travel as
// integer codes so errors.Is keeps working across the wire.
package muxrpc

import (
	"errors"
	"fmt"
	"time"

	"muxfs/internal/vfs"
)

// Error codes carried in replies; 0 means success.
const (
	codeOK = iota
	codeNotExist
	codeExist
	codeIsDir
	codeNotDir
	codeNotEmpty
	codeNoSpace
	codeInvalid
	codeClosed
	codeOther
	codeBusy
)

// ErrBusy reports server-side admission control: the request was rejected
// before execution — the worker queue is past its high watermark or the
// client exceeded its rate budget — and can be retried after the hinted
// delay. Nothing was executed, so retrying is always safe.
var ErrBusy = errors.New("muxrpc: server busy")

// BusyError carries the server's retry hint. errors.Is(err, ErrBusy)
// matches it.
type BusyError struct {
	// RetryAfter is the server's suggested backoff before retrying (zero
	// when the server offered no estimate).
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("muxrpc: server busy (retry after %v)", e.RetryAfter)
	}
	return "muxrpc: server busy"
}

func (e *BusyError) Unwrap() error { return ErrBusy }

// ErrNonIdempotent reports that the connection failed during a call that
// is not safe to replay (create, remove, rename, mkdir, close): the op may
// or may not have executed on the server. The client never silently
// retries these; the caller must decide — typically by re-checking state
// with an idempotent op (Stat) once the peer is reachable again.
var ErrNonIdempotent = errors.New("muxrpc: connection lost during non-idempotent call")

// NonIdempotentError wraps the underlying connection failure; errors.Is
// matches both ErrNonIdempotent and the transport cause.
type NonIdempotentError struct {
	Method string // the wire method that was in flight
	Cause  error  // the connection-level failure
}

func (e *NonIdempotentError) Error() string {
	return fmt.Sprintf("muxrpc: connection lost during non-idempotent %s (op may or may not have applied): %v", e.Method, e.Cause)
}

func (e *NonIdempotentError) Unwrap() []error { return []error{ErrNonIdempotent, e.Cause} }

// encodeErr maps an error to (code, message).
func encodeErr(err error) (int, string) {
	switch {
	case err == nil:
		return codeOK, ""
	case errors.Is(err, vfs.ErrNotExist):
		return codeNotExist, err.Error()
	case errors.Is(err, vfs.ErrExist):
		return codeExist, err.Error()
	case errors.Is(err, vfs.ErrIsDir):
		return codeIsDir, err.Error()
	case errors.Is(err, vfs.ErrNotDir):
		return codeNotDir, err.Error()
	case errors.Is(err, vfs.ErrNotEmpty):
		return codeNotEmpty, err.Error()
	case errors.Is(err, vfs.ErrNoSpace):
		return codeNoSpace, err.Error()
	case errors.Is(err, vfs.ErrInvalid):
		return codeInvalid, err.Error()
	case errors.Is(err, vfs.ErrClosed):
		return codeClosed, err.Error()
	case errors.Is(err, ErrBusy):
		return codeBusy, err.Error()
	default:
		return codeOther, err.Error()
	}
}

// decodeErr reconstructs a sentinel-wrapped error from (code, message).
func decodeErr(code int, msg string) error {
	var sentinel error
	switch code {
	case codeOK:
		return nil
	case codeNotExist:
		sentinel = vfs.ErrNotExist
	case codeExist:
		sentinel = vfs.ErrExist
	case codeIsDir:
		sentinel = vfs.ErrIsDir
	case codeNotDir:
		sentinel = vfs.ErrNotDir
	case codeNotEmpty:
		sentinel = vfs.ErrNotEmpty
	case codeNoSpace:
		sentinel = vfs.ErrNoSpace
	case codeInvalid:
		sentinel = vfs.ErrInvalid
	case codeClosed:
		sentinel = vfs.ErrClosed
	case codeBusy:
		return &BusyError{}
	default:
		return errors.New("muxrpc remote: " + msg)
	}
	return &remoteError{sentinel: sentinel, msg: msg}
}

// remoteError preserves errors.Is identity across the wire.
type remoteError struct {
	sentinel error
	msg      string
}

func (e *remoteError) Error() string { return "muxrpc remote: " + e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// Status is the common error-bearing reply component.
type Status struct {
	Code int
	Msg  string
}

func status(err error) Status {
	code, msg := encodeErr(err)
	return Status{Code: code, Msg: msg}
}

// Err converts the status back to an error.
func (s Status) Err() error { return decodeErr(s.Code, s.Msg) }

// Wire argument/reply types. net/rpc uses encoding/gob underneath.

// PathArgs names one path.
type PathArgs struct{ Path string }

// RenameArgs names source and destination.
type RenameArgs struct{ Old, New string }

// TruncatePathArgs sets a size by path.
type TruncatePathArgs struct {
	Path string
	Size int64
}

// SetAttrArgs carries a partial attribute update (flags select fields; gob
// handles pointers poorly across versions, so flatten).
type SetAttrArgs struct {
	Path       string
	HasSize    bool
	Size       int64
	HasMode    bool
	Mode       uint32
	HasModTime bool
	ModTime    int64
	HasATime   bool
	ATime      int64
}

// HandleReply returns an opened file handle id.
type HandleReply struct {
	Status
	Handle uint64
}

// StatReply returns file metadata.
type StatReply struct {
	Status
	Info vfs.FileInfo
}

// ReadDirReply returns directory entries.
type ReadDirReply struct {
	Status
	Entries []vfs.DirEntry
}

// StatfsReply returns capacity accounting.
type StatfsReply struct {
	Status
	Stat vfs.StatFS
}

// OKReply carries only a status.
type OKReply struct{ Status }

// HandleArgs addresses an open handle.
type HandleArgs struct{ Handle uint64 }

// ReadArgs requests a read.
type ReadArgs struct {
	Handle uint64
	Off    int64
	N      int
}

// ReadReply returns read data; EOF marks a short read at end of file.
type ReadReply struct {
	Status
	Data []byte
	EOF  bool
}

// WriteArgs requests a write.
type WriteArgs struct {
	Handle uint64
	Off    int64
	Data   []byte
}

// WriteReply returns the byte count.
type WriteReply struct {
	Status
	N int
}

// TruncateArgs sets a handle's size.
type TruncateArgs struct {
	Handle uint64
	Size   int64
}

// PunchArgs punches a hole.
type PunchArgs struct {
	Handle uint64
	Off, N int64
}

// ExtentsReply lists allocated runs.
type ExtentsReply struct {
	Status
	Extents []vfs.Extent
}

// NameReply returns the remote file system's name.
type NameReply struct{ Name string }
