package muxrpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// muxns frame layer. Every NSRequest/NSResponse gob message travels inside
// an explicit length-prefixed frame: a 4-byte big-endian payload length
// followed by that many gob bytes. The prefix lets each side enforce a
// hard frame-size cap *before* the gob decoder allocates anything on
// behalf of the peer — a lying or hostile length is rejected from four
// bytes of input, so payload-driven memory exhaustion stops at the socket
// instead of reaching admission control. (gob's own internal cap is ~1GiB
// and it allocates the message buffer from the untrusted length first;
// that is far too late for a server fronting untrusted clients.)

// NSDefaultMaxData is the default per-request payload cap (read length,
// write payload, batch payload sum), negotiated down to clients in the
// hello reply. Server option MaxData overrides it.
const NSDefaultMaxData = 8 << 20

// nsFrameSlack is the headroom a frame cap allows beyond the payload cap,
// covering gob type definitions, field overhead, and batch sub-op
// framing.
const nsFrameSlack = 1 << 20

// ErrFrameTooBig reports a frame whose declared length exceeds the
// receiver's cap. The stream is unrecoverable past it (the oversized
// frame was never read), so the connection dies with it.
var ErrFrameTooBig = errors.New("muxns: frame exceeds size cap")

const nsFrameHeaderLen = 4

// NSFrameWriter buffers one gob message and emits it as a single
// length-prefixed frame on Flush. Not safe for concurrent use; callers
// serialize Encode+Flush pairs (both ends already do, per connection).
type NSFrameWriter struct {
	w   *bufio.Writer
	buf []byte
}

// NewNSFrameWriter frames writes onto w.
func NewNSFrameWriter(w io.Writer) *NSFrameWriter {
	return &NSFrameWriter{w: bufio.NewWriter(w)}
}

// Write accumulates payload bytes for the current frame.
func (fw *NSFrameWriter) Write(p []byte) (int, error) {
	fw.buf = append(fw.buf, p...)
	return len(p), nil
}

// Flush emits the accumulated payload as one frame and flushes the
// underlying writer.
func (fw *NSFrameWriter) Flush() error {
	var hdr [nsFrameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(fw.buf)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	fw.buf = fw.buf[:0]
	return fw.w.Flush()
}

// NSFrameReader unframes a stream for a gob decoder, enforcing the frame
// cap from the length prefix. It implements io.ByteReader so gob reads
// through it directly instead of adding its own read-ahead buffer.
type NSFrameReader struct {
	r   *bufio.Reader
	rem int64 // payload bytes left in the current frame
	max int64
}

// NewNSFrameReader unframes r with the given per-frame cap.
func NewNSFrameReader(r io.Reader, max int64) *NSFrameReader {
	return &NSFrameReader{r: bufio.NewReader(r), max: max}
}

// SetMax raises or lowers the per-frame cap (hello negotiation). Callers
// must not race it with reads; both ends only call it between the
// synchronous handshake and the first pipelined frame.
func (fr *NSFrameReader) SetMax(max int64) {
	if max > 0 {
		fr.max = max
	}
}

// nextFrame consumes one length prefix, leaving its payload pending.
func (fr *NSFrameReader) nextFrame() error {
	var hdr [nsFrameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return err
	}
	n := int64(binary.BigEndian.Uint32(hdr[:]))
	if n == 0 || n > fr.max {
		return fmt.Errorf("%w: %d bytes (cap %d)", ErrFrameTooBig, n, fr.max)
	}
	fr.rem = n
	return nil
}

func (fr *NSFrameReader) Read(p []byte) (int, error) {
	if fr.rem == 0 {
		if err := fr.nextFrame(); err != nil {
			return 0, err
		}
	}
	if int64(len(p)) > fr.rem {
		p = p[:fr.rem]
	}
	n, err := fr.r.Read(p)
	fr.rem -= int64(n)
	return n, err
}

func (fr *NSFrameReader) ReadByte() (byte, error) {
	if fr.rem == 0 {
		if err := fr.nextFrame(); err != nil {
			return 0, err
		}
	}
	b, err := fr.r.ReadByte()
	if err == nil {
		fr.rem--
	}
	return b, err
}
