package muxrpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"sync/atomic"

	"muxfs/internal/vfs"
)

// ErrHandshake reports that the TCP dial succeeded but the post-dial
// protocol handshake ("MuxTier.Name") failed — the peer is reachable but
// is not speaking muxrpc (wrong port, wrong protocol, corrupt frames).
var ErrHandshake = errors.New("muxrpc: handshake failed")

// DefaultPoolSize is the connection-pool width Dial uses when the caller
// doesn't choose one. It matches the default data fan-out width of the
// core engine so a striped tier's concurrent shard ops aren't head-of-line
// blocked on a single socket's reply stream.
const DefaultPoolSize = 8

// Client is a vfs.FileSystem whose operations execute on a remote Server.
// Register it with Mux via AddTier and the remote machine becomes a tier.
//
// Calls are spread round-robin over a small pool of net/rpc connections:
// net/rpc multiplexes concurrent calls on one socket, but replies are
// decoded by a single reader goroutine per connection, so one socket
// serializes large payload decodes. The pool lets K concurrent shard
// reads actually stream in parallel.
type Client struct {
	name    string
	network string
	addr    string
	next    atomic.Uint64
	conns   []*poolConn

	// Pool counters (PoolStats). Dials counts successful socket dials,
	// initial and reconnect; reconnects counts only the lazy redials after
	// a slot was invalidated by a connection failure.
	dials      atomic.Int64
	reconnects atomic.Int64
	dialErrs   atomic.Int64
	calls      atomic.Int64
	connErrs   atomic.Int64
	retries    atomic.Int64
}

// poolConn is one slot of the pool. The slot redials lazily after a
// connection-level failure; mu guards the redial so concurrent callers
// don't stampede.
type poolConn struct {
	mu       sync.Mutex
	network  string
	addr     string
	rc       *rpc.Client
	owner    *Client
	inflight atomic.Int64
}

// get returns the slot's live connection, redialing if the previous one
// was invalidated.
func (pc *poolConn) get() (*rpc.Client, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.rc == nil {
		rc, err := rpc.Dial(pc.network, pc.addr)
		if err != nil {
			tierDialErrors.Add(1)
			if pc.owner != nil {
				pc.owner.dialErrs.Add(1)
			}
			return nil, err
		}
		pc.rc = rc
		tierDials.Add(1)
		if pc.owner != nil {
			pc.owner.dials.Add(1)
			pc.owner.reconnects.Add(1)
		}
	}
	return pc.rc, nil
}

// invalidate drops rc if it is still the slot's current connection.
func (pc *poolConn) invalidate(rc *rpc.Client) {
	pc.mu.Lock()
	if pc.rc == rc {
		pc.rc.Close()
		pc.rc = nil
	}
	pc.mu.Unlock()
}

func (pc *poolConn) close() {
	pc.mu.Lock()
	if pc.rc != nil {
		pc.rc.Close()
		pc.rc = nil
	}
	pc.mu.Unlock()
}

var _ vfs.FileSystem = (*Client)(nil)

// Dial connects to a muxrpc server at addr ("host:port") with the default
// pool size.
func Dial(network, addr string) (*Client, error) {
	return DialPool(network, addr, DefaultPoolSize)
}

// DialPool connects with an explicit connection-pool size (minimum 1).
// All connections are established eagerly so a dead peer fails fast; the
// handshake runs once on the first connection.
func DialPool(network, addr string, size int) (*Client, error) {
	if size < 1 {
		size = 1
	}
	c := &Client{network: network, addr: addr, conns: make([]*poolConn, size)}
	for i := range c.conns {
		rc, err := rpc.Dial(network, addr)
		if err != nil {
			tierDialErrors.Add(1)
			c.Close()
			return nil, err
		}
		tierDials.Add(1)
		c.dials.Add(1)
		c.conns[i] = &poolConn{network: network, addr: addr, rc: rc, owner: c}
	}
	var nr NameReply
	if err := c.conns[0].rc.Call("MuxTier.Name", struct{}{}, &nr); err != nil {
		tierHandshakeFails.Add(1)
		c.Close()
		return nil, fmt.Errorf("%w: %s %s: %v", ErrHandshake, network, addr, err)
	}
	c.name = "remote:" + nr.Name
	return c, nil
}

// PoolSize reports the number of pooled connections.
func (c *Client) PoolSize() int { return len(c.conns) }

// Close tears down every pooled connection.
func (c *Client) Close() error {
	var first error
	for _, pc := range c.conns {
		if pc == nil {
			continue
		}
		pc.mu.Lock()
		if pc.rc != nil {
			if err := pc.rc.Close(); err != nil && first == nil {
				first = err
			}
			pc.rc = nil
		}
		pc.mu.Unlock()
	}
	return first
}

// Name identifies the remote file system.
func (c *Client) Name() string { return c.name }

// isConnErr reports whether err is a connection-level failure (socket
// died, stream desynchronized) rather than an application error returned
// by the server. net/rpc surfaces these as ErrShutdown for calls queued
// after the reader loop dies, and as the raw read error (unexpected EOF,
// reset, gob desync) for the calls in flight when it died.
func isConnErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "unexpected EOF") ||
		strings.Contains(s, "connection reset") ||
		strings.Contains(s, "broken pipe") ||
		strings.Contains(s, "use of closed network connection")
}

// call issues method over the next pooled connection. Idempotent calls
// (absolute-offset reads/writes, stats, truncates — anything safe to
// apply twice) get one reconnect-and-retry when the connection itself
// failed; server handles survive reconnects because the handle table
// lives in the Server, not the connection.
func (c *Client) call(method string, args, reply any, idempotent bool) error {
	pc := c.conns[c.next.Add(1)%uint64(len(c.conns))]
	rc, err := pc.get()
	if err != nil {
		return err
	}
	c.calls.Add(1)
	pc.inflight.Add(1)
	err = rc.Call(method, args, reply)
	pc.inflight.Add(-1)
	if !isConnErr(err) {
		return err
	}
	c.connErrs.Add(1)
	pc.invalidate(rc)
	if !idempotent {
		return &NonIdempotentError{Method: method, Cause: err}
	}
	rc, rerr := pc.get()
	if rerr != nil {
		return err
	}
	c.retries.Add(1)
	pc.inflight.Add(1)
	err = rc.Call(method, args, reply)
	pc.inflight.Add(-1)
	if isConnErr(err) {
		c.connErrs.Add(1)
		pc.invalidate(rc)
	}
	return err
}

func (c *Client) callOK(method string, args any, idempotent bool) error {
	var reply OKReply
	if err := c.call(method, args, &reply, idempotent); err != nil {
		return err
	}
	return reply.Err()
}

// Create makes and opens a remote file.
func (c *Client) Create(path string) (vfs.File, error) {
	var reply HandleReply
	if err := c.call("MuxTier.Create", PathArgs{Path: path}, &reply, false); err != nil {
		return nil, err
	}
	if err := reply.Err(); err != nil {
		return nil, err
	}
	return &remoteFile{c: c, handle: reply.Handle, path: vfs.CleanPath(path)}, nil
}

// Open opens a remote file. Opening is read-only bookkeeping on the
// server, so it is retried on connection failure (a leaked handle on a
// double-apply is reclaimed when the server restarts).
func (c *Client) Open(path string) (vfs.File, error) {
	var reply HandleReply
	if err := c.call("MuxTier.Open", PathArgs{Path: path}, &reply, true); err != nil {
		return nil, err
	}
	if err := reply.Err(); err != nil {
		return nil, err
	}
	return &remoteFile{c: c, handle: reply.Handle, path: vfs.CleanPath(path)}, nil
}

// Remove deletes a remote file or empty directory.
func (c *Client) Remove(path string) error {
	return c.callOK("MuxTier.Remove", PathArgs{Path: path}, false)
}

// Rename moves a remote file.
func (c *Client) Rename(oldPath, newPath string) error {
	return c.callOK("MuxTier.Rename", RenameArgs{Old: oldPath, New: newPath}, false)
}

// Mkdir creates a remote directory.
func (c *Client) Mkdir(path string) error {
	return c.callOK("MuxTier.Mkdir", PathArgs{Path: path}, false)
}

// ReadDir lists a remote directory.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	var reply ReadDirReply
	if err := c.call("MuxTier.ReadDir", PathArgs{Path: path}, &reply, true); err != nil {
		return nil, err
	}
	return reply.Entries, reply.Err()
}

// Stat returns remote metadata.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	var reply StatReply
	if err := c.call("MuxTier.Stat", PathArgs{Path: path}, &reply, true); err != nil {
		return vfs.FileInfo{}, err
	}
	return reply.Info, reply.Err()
}

// SetAttr applies a partial metadata update remotely. The update sets
// absolute values, so replaying it after a reconnect is safe.
func (c *Client) SetAttr(path string, attr vfs.SetAttr) error {
	args := SetAttrArgs{Path: path}
	if attr.Size != nil {
		args.HasSize, args.Size = true, *attr.Size
	}
	if attr.Mode != nil {
		args.HasMode, args.Mode = true, uint32(*attr.Mode)
	}
	if attr.ModTime != nil {
		args.HasModTime, args.ModTime = true, int64(*attr.ModTime)
	}
	if attr.ATime != nil {
		args.HasATime, args.ATime = true, int64(*attr.ATime)
	}
	return c.callOK("MuxTier.SetAttr", args, true)
}

// Truncate sets a remote file's size by path.
func (c *Client) Truncate(path string, size int64) error {
	return c.callOK("MuxTier.Truncate", TruncatePathArgs{Path: path, Size: size}, true)
}

// Statfs reports remote capacity.
func (c *Client) Statfs() (vfs.StatFS, error) {
	var reply StatfsReply
	if err := c.call("MuxTier.Statfs", struct{}{}, &reply, true); err != nil {
		return vfs.StatFS{}, err
	}
	return reply.Stat, reply.Err()
}

// Sync persists the remote file system.
func (c *Client) Sync() error {
	return c.callOK("MuxTier.Sync", struct{}{}, true)
}

// remoteFile is a vfs.File proxied over the connection.
type remoteFile struct {
	c      *Client
	handle uint64
	path   string
	closed bool
}

var _ vfs.File = (*remoteFile)(nil)

// Path returns the path the handle was opened with.
func (f *remoteFile) Path() string { return f.path }

func (f *remoteFile) check() error {
	if f.closed {
		return vfs.ErrClosed
	}
	return nil
}

// ReadAt reads from the remote file.
func (f *remoteFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	var reply ReadReply
	if err := f.c.call("MuxTier.ReadAt", ReadArgs{Handle: f.handle, Off: off, N: len(p)}, &reply, true); err != nil {
		return 0, err
	}
	if err := reply.Err(); err != nil {
		return 0, err
	}
	n := copy(p, reply.Data)
	if reply.EOF {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes to the remote file. An absolute-offset write of the same
// bytes is idempotent, so it is retried once after a reconnect.
func (f *remoteFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	var reply WriteReply
	if err := f.c.call("MuxTier.WriteAt", WriteArgs{Handle: f.handle, Off: off, Data: p}, &reply, true); err != nil {
		return 0, err
	}
	return reply.N, reply.Err()
}

// Truncate sets the remote file's size.
func (f *remoteFile) Truncate(size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	var reply OKReply
	if err := f.c.call("MuxTier.TruncateHandle", TruncateArgs{Handle: f.handle, Size: size}, &reply, true); err != nil {
		return err
	}
	return reply.Err()
}

// Sync fsyncs the remote file.
func (f *remoteFile) Sync() error {
	if err := f.check(); err != nil {
		return err
	}
	var reply OKReply
	if err := f.c.call("MuxTier.SyncHandle", HandleArgs{Handle: f.handle}, &reply, true); err != nil {
		return err
	}
	return reply.Err()
}

// Close releases the remote handle.
func (f *remoteFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	var reply OKReply
	if err := f.c.call("MuxTier.CloseHandle", HandleArgs{Handle: f.handle}, &reply, false); err != nil {
		return err
	}
	return reply.Err()
}

// Stat returns the remote file's metadata.
func (f *remoteFile) Stat() (vfs.FileInfo, error) {
	if err := f.check(); err != nil {
		return vfs.FileInfo{}, err
	}
	var reply StatReply
	if err := f.c.call("MuxTier.StatHandle", HandleArgs{Handle: f.handle}, &reply, true); err != nil {
		return vfs.FileInfo{}, err
	}
	return reply.Info, reply.Err()
}

// Extents lists the remote file's allocated runs.
func (f *remoteFile) Extents() ([]vfs.Extent, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	var reply ExtentsReply
	if err := f.c.call("MuxTier.Extents", HandleArgs{Handle: f.handle}, &reply, true); err != nil {
		return nil, err
	}
	return reply.Extents, reply.Err()
}

// PunchHole deallocates a remote range.
func (f *remoteFile) PunchHole(off, n int64) error {
	if err := f.check(); err != nil {
		return err
	}
	var reply OKReply
	if err := f.c.call("MuxTier.PunchHole", PunchArgs{Handle: f.handle, Off: off, N: n}, &reply, true); err != nil {
		return err
	}
	return reply.Err()
}

// Crash asks the remote node to simulate power loss (fault drills).
func (c *Client) Crash() {
	var reply OKReply
	_ = c.call("MuxTier.Crash", struct{}{}, &reply, false)
}

// Recover asks the remote node to run crash recovery.
func (c *Client) Recover() error {
	var reply OKReply
	if err := c.call("MuxTier.Recover", struct{}{}, &reply, false); err != nil {
		return err
	}
	return reply.Err()
}
