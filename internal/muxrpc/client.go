package muxrpc

import (
	"io"
	"net/rpc"

	"muxfs/internal/vfs"
)

// Client is a vfs.FileSystem whose operations execute on a remote Server.
// Register it with Mux via AddTier and the remote machine becomes a tier.
type Client struct {
	rc   *rpc.Client
	name string
}

var _ vfs.FileSystem = (*Client)(nil)

// Dial connects to a muxrpc server at addr ("host:port").
func Dial(network, addr string) (*Client, error) {
	rc, err := rpc.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{rc: rc}
	var nr NameReply
	if err := rc.Call("MuxTier.Name", struct{}{}, &nr); err != nil {
		rc.Close()
		return nil, err
	}
	c.name = "remote:" + nr.Name
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rc.Close() }

// Name identifies the remote file system.
func (c *Client) Name() string { return c.name }

func (c *Client) callOK(method string, args any) error {
	var reply OKReply
	if err := c.rc.Call(method, args, &reply); err != nil {
		return err
	}
	return reply.Err()
}

// Create makes and opens a remote file.
func (c *Client) Create(path string) (vfs.File, error) {
	var reply HandleReply
	if err := c.rc.Call("MuxTier.Create", PathArgs{Path: path}, &reply); err != nil {
		return nil, err
	}
	if err := reply.Err(); err != nil {
		return nil, err
	}
	return &remoteFile{c: c, handle: reply.Handle, path: vfs.CleanPath(path)}, nil
}

// Open opens a remote file.
func (c *Client) Open(path string) (vfs.File, error) {
	var reply HandleReply
	if err := c.rc.Call("MuxTier.Open", PathArgs{Path: path}, &reply); err != nil {
		return nil, err
	}
	if err := reply.Err(); err != nil {
		return nil, err
	}
	return &remoteFile{c: c, handle: reply.Handle, path: vfs.CleanPath(path)}, nil
}

// Remove deletes a remote file or empty directory.
func (c *Client) Remove(path string) error {
	return c.callOK("MuxTier.Remove", PathArgs{Path: path})
}

// Rename moves a remote file.
func (c *Client) Rename(oldPath, newPath string) error {
	return c.callOK("MuxTier.Rename", RenameArgs{Old: oldPath, New: newPath})
}

// Mkdir creates a remote directory.
func (c *Client) Mkdir(path string) error {
	return c.callOK("MuxTier.Mkdir", PathArgs{Path: path})
}

// ReadDir lists a remote directory.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	var reply ReadDirReply
	if err := c.rc.Call("MuxTier.ReadDir", PathArgs{Path: path}, &reply); err != nil {
		return nil, err
	}
	return reply.Entries, reply.Err()
}

// Stat returns remote metadata.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	var reply StatReply
	if err := c.rc.Call("MuxTier.Stat", PathArgs{Path: path}, &reply); err != nil {
		return vfs.FileInfo{}, err
	}
	return reply.Info, reply.Err()
}

// SetAttr applies a partial metadata update remotely.
func (c *Client) SetAttr(path string, attr vfs.SetAttr) error {
	args := SetAttrArgs{Path: path}
	if attr.Size != nil {
		args.HasSize, args.Size = true, *attr.Size
	}
	if attr.Mode != nil {
		args.HasMode, args.Mode = true, uint32(*attr.Mode)
	}
	if attr.ModTime != nil {
		args.HasModTime, args.ModTime = true, int64(*attr.ModTime)
	}
	if attr.ATime != nil {
		args.HasATime, args.ATime = true, int64(*attr.ATime)
	}
	return c.callOK("MuxTier.SetAttr", args)
}

// Truncate sets a remote file's size by path.
func (c *Client) Truncate(path string, size int64) error {
	return c.callOK("MuxTier.Truncate", TruncatePathArgs{Path: path, Size: size})
}

// Statfs reports remote capacity.
func (c *Client) Statfs() (vfs.StatFS, error) {
	var reply StatfsReply
	if err := c.rc.Call("MuxTier.Statfs", struct{}{}, &reply); err != nil {
		return vfs.StatFS{}, err
	}
	return reply.Stat, reply.Err()
}

// Sync persists the remote file system.
func (c *Client) Sync() error {
	return c.callOK("MuxTier.Sync", struct{}{})
}

// remoteFile is a vfs.File proxied over the connection.
type remoteFile struct {
	c      *Client
	handle uint64
	path   string
	closed bool
}

var _ vfs.File = (*remoteFile)(nil)

// Path returns the path the handle was opened with.
func (f *remoteFile) Path() string { return f.path }

func (f *remoteFile) check() error {
	if f.closed {
		return vfs.ErrClosed
	}
	return nil
}

// ReadAt reads from the remote file.
func (f *remoteFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	var reply ReadReply
	if err := f.c.rc.Call("MuxTier.ReadAt", ReadArgs{Handle: f.handle, Off: off, N: len(p)}, &reply); err != nil {
		return 0, err
	}
	if err := reply.Err(); err != nil {
		return 0, err
	}
	n := copy(p, reply.Data)
	if reply.EOF {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes to the remote file.
func (f *remoteFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	var reply WriteReply
	if err := f.c.rc.Call("MuxTier.WriteAt", WriteArgs{Handle: f.handle, Off: off, Data: p}, &reply); err != nil {
		return 0, err
	}
	return reply.N, reply.Err()
}

// Truncate sets the remote file's size.
func (f *remoteFile) Truncate(size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	var reply OKReply
	if err := f.c.rc.Call("MuxTier.TruncateHandle", TruncateArgs{Handle: f.handle, Size: size}, &reply); err != nil {
		return err
	}
	return reply.Err()
}

// Sync fsyncs the remote file.
func (f *remoteFile) Sync() error {
	if err := f.check(); err != nil {
		return err
	}
	var reply OKReply
	if err := f.c.rc.Call("MuxTier.SyncHandle", HandleArgs{Handle: f.handle}, &reply); err != nil {
		return err
	}
	return reply.Err()
}

// Close releases the remote handle.
func (f *remoteFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	var reply OKReply
	if err := f.c.rc.Call("MuxTier.CloseHandle", HandleArgs{Handle: f.handle}, &reply); err != nil {
		return err
	}
	return reply.Err()
}

// Stat returns the remote file's metadata.
func (f *remoteFile) Stat() (vfs.FileInfo, error) {
	if err := f.check(); err != nil {
		return vfs.FileInfo{}, err
	}
	var reply StatReply
	if err := f.c.rc.Call("MuxTier.StatHandle", HandleArgs{Handle: f.handle}, &reply); err != nil {
		return vfs.FileInfo{}, err
	}
	return reply.Info, reply.Err()
}

// Extents lists the remote file's allocated runs.
func (f *remoteFile) Extents() ([]vfs.Extent, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	var reply ExtentsReply
	if err := f.c.rc.Call("MuxTier.Extents", HandleArgs{Handle: f.handle}, &reply); err != nil {
		return nil, err
	}
	return reply.Extents, reply.Err()
}

// PunchHole deallocates a remote range.
func (f *remoteFile) PunchHole(off, n int64) error {
	if err := f.check(); err != nil {
		return err
	}
	var reply OKReply
	if err := f.c.rc.Call("MuxTier.PunchHole", PunchArgs{Handle: f.handle, Off: off, N: n}, &reply); err != nil {
		return err
	}
	return reply.Err()
}

// Crash asks the remote node to simulate power loss (fault drills).
func (c *Client) Crash() {
	var reply OKReply
	_ = c.rc.Call("MuxTier.Crash", struct{}{}, &reply)
}

// Recover asks the remote node to run crash recovery.
func (c *Client) Recover() error {
	var reply OKReply
	if err := c.rc.Call("MuxTier.Recover", struct{}{}, &reply); err != nil {
		return err
	}
	return reply.Err()
}
