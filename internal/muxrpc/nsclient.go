package muxrpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"muxfs/internal/vfs"
)

// NSClient speaks the muxns namespace protocol (nswire.go) to an
// internal/server front end. It implements vfs.FileSystem, so a remote Mux
// namespace mounts like any local file system, and adds the Batch call for
// wire-level request coalescing.
//
// Calls pipeline: many goroutines may issue requests concurrently over one
// connection, and the server replies out of order as its workers finish;
// a per-connection reader routes responses back by sequence number.
// Handles are scoped to the connection that opened them (the server reaps
// a vanished client's handles), so each open file is pinned to its pool
// slot; after a reconnect the file transparently re-opens by path before an
// idempotent op retries.
//
// Retry semantics: every handle op except Close is idempotent by
// construction — reads, writes, truncates, and punches all carry absolute
// offsets and sizes, so re-issuing one after a reconnect re-applies the
// same state transition. In particular a retried WriteAt rewrites the
// same bytes at the same offset; with a concurrent writer to the same
// range the outcome is last-writer-wins, exactly the contract local
// WriteAt already has. Only namespace ops whose replay could observe a
// different world (Create, Remove, Rename, Mkdir) never retry: a
// connection failure mid-call surfaces as NonIdempotentError and the
// caller owns the ambiguity.
type NSClient struct {
	network string
	addr    string
	opts    NSDialOptions

	// Hello-negotiated state, (re)written by whichever slot dials and read
	// by any caller goroutine — hence atomics.
	name     atomic.Pointer[string]
	maxBatch atomic.Int64
	maxData  atomic.Int64

	next  atomic.Uint64
	slots []*nsSlot

	dials      atomic.Int64
	reconnects atomic.Int64
	dialErrs   atomic.Int64
	calls      atomic.Int64
	connErrs   atomic.Int64
	retries    atomic.Int64
	reopens    atomic.Int64
	busyWaits  atomic.Int64

	closed atomic.Bool
}

var _ vfs.FileSystem = (*NSClient)(nil)

// NSDialOptions tunes an NSClient.
type NSDialOptions struct {
	// PoolSize is the connection-pool width (default 1: a namespace
	// client models one end user; raise it for embedders that want
	// parallel large transfers on independent files).
	PoolSize int
	// BusyRetries bounds automatic retries after a server busy rejection
	// (admission control). Default 8; negative disables retries so
	// BusyError surfaces to the caller immediately.
	BusyRetries int
	// BusyWait is the backoff used when the server's busy reply carried no
	// retry-after hint (default 2ms).
	BusyWait time.Duration
}

func (o *NSDialOptions) fill() {
	if o.PoolSize < 1 {
		o.PoolSize = 1
	}
	if o.BusyRetries == 0 {
		o.BusyRetries = 8
	}
	if o.BusyWait <= 0 {
		o.BusyWait = 2 * time.Millisecond
	}
}

// NSDial connects to a namespace server with default options.
func NSDial(network, addr string) (*NSClient, error) {
	return NSDialOpts(network, addr, NSDialOptions{})
}

// NSDialOpts connects with explicit options. The first connection is
// established (and the hello handshake run) eagerly so a dead or
// wrong-protocol peer fails fast; remaining slots dial lazily.
func NSDialOpts(network, addr string, opts NSDialOptions) (*NSClient, error) {
	opts.fill()
	c := &NSClient{network: network, addr: addr, opts: opts}
	c.slots = make([]*nsSlot, opts.PoolSize)
	for i := range c.slots {
		c.slots[i] = &nsSlot{c: c}
	}
	if _, err := c.slots[0].get(); err != nil {
		return nil, err
	}
	return c, nil
}

// MaxBatch reports the server's negotiated batch-size limit.
func (c *NSClient) MaxBatch() int { return int(c.maxBatch.Load()) }

// MaxData reports the server's negotiated per-request payload cap.
// Reads/writes larger than it are chunked transparently; batch sub-ops
// must fit it.
func (c *NSClient) MaxData() int64 {
	if m := c.maxData.Load(); m > 0 {
		return m
	}
	return NSDefaultMaxData
}

// PoolSize reports the connection-pool width.
func (c *NSClient) PoolSize() int { return len(c.slots) }

// PoolStats snapshots the client's connection counters; Reopens counts
// handle re-opens after reconnects, folded into Retries' sibling series by
// callers that want one number.
func (c *NSClient) PoolStats() PoolStats {
	st := PoolStats{
		Addr:       c.addr,
		Slots:      len(c.slots),
		Dials:      c.dials.Load(),
		Reconnects: c.reconnects.Load(),
		DialErrors: c.dialErrs.Load(),
		Calls:      c.calls.Load(),
		ConnErrors: c.connErrs.Load(),
		Retries:    c.retries.Load(),
		InFlight:   make([]int64, 0, len(c.slots)),
	}
	for _, s := range c.slots {
		st.InFlight = append(st.InFlight, s.inflight.Load())
	}
	return st
}

// RPCPoolStats satisfies the structural pool-stats interface.
func (c *NSClient) RPCPoolStats() []PoolStats { return []PoolStats{c.PoolStats()} }

// Close tears down every pooled connection.
func (c *NSClient) Close() error {
	c.closed.Store(true)
	for _, s := range c.slots {
		s.close()
	}
	return nil
}

// nsSlot is one pool slot: a lazily (re)dialed connection.
type nsSlot struct {
	c        *NSClient
	mu       sync.Mutex
	cur      *nsConn
	inflight atomic.Int64
}

// nsConn is one live connection: a framed gob stream with a reader
// goroutine routing responses to pending calls by sequence number.
type nsConn struct {
	nc net.Conn
	fw *NSFrameWriter
	fr *NSFrameReader

	encMu sync.Mutex // serializes frame encoding + flush
	enc   *gob.Encoder
	dec   *gob.Decoder

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan nsCallRes
	dead    bool
	err     error
}

// nsCallRes is a routed response or the connection failure that ended it.
type nsCallRes struct {
	resp *NSResponse
	err  error
}

// get returns the slot's live connection, dialing (and handshaking) a new
// one when the previous died.
func (s *nsSlot) get() (*nsConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil {
		return s.cur, nil
	}
	if s.c.closed.Load() {
		return nil, vfs.ErrClosed
	}
	nc, err := net.Dial(s.c.network, s.c.addr)
	if err != nil {
		tierDialErrors.Add(1)
		s.c.dialErrs.Add(1)
		return nil, err
	}
	// The frame cap starts at the default payload budget (the hello reply
	// is tiny) and widens to the server's negotiated MaxData below.
	fw := NewNSFrameWriter(nc)
	fr := NewNSFrameReader(nc, NSDefaultMaxData+nsFrameSlack)
	conn := &nsConn{
		nc:      nc,
		fw:      fw,
		fr:      fr,
		enc:     gob.NewEncoder(fw),
		dec:     gob.NewDecoder(fr),
		pending: map[uint64]chan nsCallRes{},
	}
	// Hello handshake, synchronous on the fresh stream: a peer that is
	// reachable but not speaking muxns fails here with ErrHandshake.
	hello := &NSRequest{Seq: 1, Op: NSHello, N: NSProtoVersion}
	conn.seq = 1
	if err := conn.send(hello); err != nil {
		nc.Close()
		tierHandshakeFails.Add(1)
		return nil, fmt.Errorf("%w: %s %s: %v", ErrHandshake, s.c.network, s.c.addr, err)
	}
	var hr NSResponse
	if err := conn.dec.Decode(&hr); err != nil {
		nc.Close()
		tierHandshakeFails.Add(1)
		return nil, fmt.Errorf("%w: %s %s: %v", ErrHandshake, s.c.network, s.c.addr, err)
	}
	if err := hr.Err(); err != nil {
		nc.Close()
		tierHandshakeFails.Add(1)
		return nil, fmt.Errorf("%w: %s %s: %v", ErrHandshake, s.c.network, s.c.addr, err)
	}
	tierDials.Add(1)
	if s.c.dials.Add(1) > int64(len(s.c.slots)) {
		s.c.reconnects.Add(1)
	}
	name := "muxns:" + hr.ServerName
	s.c.name.Store(&name)
	if hr.MaxBatch > 0 {
		s.c.maxBatch.Store(int64(hr.MaxBatch))
	}
	if hr.MaxData > 0 {
		s.c.maxData.Store(hr.MaxData)
		// Response frames carry at most one request's payload; widen the
		// cap before the first pipelined frame (readLoop is not running
		// yet, so this cannot race a read).
		fr.SetMax(hr.MaxData + nsFrameSlack)
	}
	s.cur = conn
	go s.readLoop(conn)
	return conn, nil
}

// drop forgets conn if it is still current, so the next get() redials.
func (s *nsSlot) drop(conn *nsConn) {
	s.mu.Lock()
	if s.cur == conn {
		s.cur = nil
	}
	s.mu.Unlock()
}

func (s *nsSlot) close() {
	s.mu.Lock()
	conn := s.cur
	s.cur = nil
	s.mu.Unlock()
	if conn != nil {
		conn.nc.Close()
	}
}

// readLoop decodes response frames and routes them by Seq until the stream
// dies, then fails every pending call.
func (s *nsSlot) readLoop(conn *nsConn) {
	for {
		resp := &NSResponse{}
		if err := conn.dec.Decode(resp); err != nil {
			conn.fail(err)
			s.drop(conn)
			conn.nc.Close()
			return
		}
		conn.route(resp)
	}
}

// send encodes one frame and flushes it. Callers hold no conn locks.
func (c *nsConn) send(req *NSRequest) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	return c.fw.Flush()
}

// register allocates a sequence number and parks a result channel for it.
func (c *nsConn) register() (uint64, chan nsCallRes, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, nil, c.err
	}
	c.seq++
	seq := c.seq
	ch := make(chan nsCallRes, 1)
	c.pending[seq] = ch
	return seq, ch, nil
}

func (c *nsConn) unregister(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// route delivers one response to its waiting call.
func (c *nsConn) route(resp *NSResponse) {
	c.mu.Lock()
	ch := c.pending[resp.Seq]
	delete(c.pending, resp.Seq)
	c.mu.Unlock()
	if ch != nil {
		ch <- nsCallRes{resp: resp}
	}
}

// fail marks the connection dead and errors out every pending call.
func (c *nsConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	pend := c.pending
	c.pending = map[uint64]chan nsCallRes{}
	c.mu.Unlock()
	for _, ch := range pend {
		ch <- nsCallRes{err: err}
	}
}

// do issues one request over conn and waits for its routed response. A
// connection-level failure is returned as-is (callers classify it with
// isConnErr).
func (c *NSClient) do(s *nsSlot, conn *nsConn, req *NSRequest) (*NSResponse, error) {
	seq, ch, err := conn.register()
	if err != nil {
		return nil, err
	}
	req.Seq = seq
	c.calls.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if err := conn.send(req); err != nil {
		conn.unregister(seq)
		conn.nc.Close() // stream state unknown; kill it so the reader redials
		c.connErrs.Add(1)
		return nil, err
	}
	res := <-ch
	if res.err != nil {
		c.connErrs.Add(1)
		return nil, res.err
	}
	return res.resp, nil
}

// doBusy runs do plus the busy-retry loop: a codeBusy response sleeps the
// server's retry-after hint and re-issues the request, bounded by
// BusyRetries. Connection errors pass through untouched.
func (c *NSClient) doBusy(s *nsSlot, conn *nsConn, req *NSRequest) (*NSResponse, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.do(s, conn, req)
		if err != nil {
			return nil, err
		}
		if resp.Code != codeBusy || attempt >= c.opts.BusyRetries || c.opts.BusyRetries < 0 {
			return resp, nil
		}
		c.busyWaits.Add(1)
		time.Sleep(c.busyBackoff(resp, attempt))
	}
}

// busyBackoff is the sleep before busy-retry attempt (0-based). The
// server's retry-after hint has millisecond granularity, so a client
// whose token bucket hovers just under the cost would otherwise hammer
// at the hint floor; consecutive rejections grow the wait exponentially
// until the client converges on the limiter's actual admission period.
func (c *NSClient) busyBackoff(resp *NSResponse, attempt int) time.Duration {
	wait := time.Duration(resp.RetryAfterMs) * time.Millisecond
	if wait <= 0 {
		wait = c.opts.BusyWait
	}
	if attempt > 6 {
		attempt = 6
	}
	wait <<= attempt
	if wait > 200*time.Millisecond {
		wait = 200 * time.Millisecond
	}
	return wait
}

// call issues a path-level request over the next pooled slot, redialing
// and retrying once on connection failure when the op is idempotent.
func (c *NSClient) call(req *NSRequest, idempotent bool) (*NSResponse, error) {
	s := c.slots[c.next.Add(1)%uint64(len(c.slots))]
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := s.get()
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		resp, err := c.do(s, conn, req)
		if err == nil {
			resp2, err2 := c.busyTail(s, conn, req, resp)
			if err2 != nil && isConnErr(err2) && !idempotent {
				return nil, &NonIdempotentError{Method: "muxns." + req.Op.String(), Cause: err2}
			}
			return resp2, err2
		}
		if !isConnErr(err) {
			return nil, err
		}
		if !idempotent {
			return nil, &NonIdempotentError{Method: "muxns." + req.Op.String(), Cause: err}
		}
		lastErr = err
		c.retries.Add(1)
	}
	return nil, lastErr
}

// busyTail finishes the busy-retry loop for a response already in hand.
func (c *NSClient) busyTail(s *nsSlot, conn *nsConn, req *NSRequest, resp *NSResponse) (*NSResponse, error) {
	for attempt := 0; resp.Code == codeBusy && attempt < c.opts.BusyRetries && c.opts.BusyRetries >= 0; attempt++ {
		c.busyWaits.Add(1)
		time.Sleep(c.busyBackoff(resp, attempt))
		var err error
		resp, err = c.do(s, conn, req)
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// Name identifies the remote namespace.
func (c *NSClient) Name() string {
	if n := c.name.Load(); n != nil {
		return *n
	}
	return "muxns:"
}

// Create makes and opens a remote file. Not idempotent: a connection
// failure mid-call surfaces NonIdempotentError.
func (c *NSClient) Create(path string) (vfs.File, error) {
	return c.openOrCreate(path, NSCreate, false)
}

// Open opens an existing remote file; safe to retry.
func (c *NSClient) Open(path string) (vfs.File, error) {
	return c.openOrCreate(path, NSOpen, true)
}

func (c *NSClient) openOrCreate(path string, op NSOp, idempotent bool) (vfs.File, error) {
	s := c.slots[c.next.Add(1)%uint64(len(c.slots))]
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := s.get()
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		resp, err := c.doBusy(s, conn, &NSRequest{Op: op, Path: path})
		if err == nil {
			if rerr := resp.Err(); rerr != nil {
				return nil, rerr
			}
			return &NSFile{c: c, slot: s, conn: conn, handle: resp.Handle, path: vfs.CleanPath(path)}, nil
		}
		if !isConnErr(err) {
			return nil, err
		}
		if !idempotent {
			return nil, &NonIdempotentError{Method: "muxns." + op.String(), Cause: err}
		}
		lastErr = err
		c.retries.Add(1)
	}
	return nil, lastErr
}

func (c *NSClient) callOK(req *NSRequest, idempotent bool) error {
	resp, err := c.call(req, idempotent)
	if err != nil {
		return err
	}
	return resp.Err()
}

// Remove deletes a remote file or empty directory (not idempotent).
func (c *NSClient) Remove(path string) error {
	return c.callOK(&NSRequest{Op: NSRemove, Path: path}, false)
}

// Rename moves a remote file (not idempotent).
func (c *NSClient) Rename(oldPath, newPath string) error {
	return c.callOK(&NSRequest{Op: NSRename, Path: oldPath, Path2: newPath}, false)
}

// Mkdir creates a remote directory (not idempotent).
func (c *NSClient) Mkdir(path string) error {
	return c.callOK(&NSRequest{Op: NSMkdir, Path: path}, false)
}

// ReadDir lists a remote directory.
func (c *NSClient) ReadDir(path string) ([]vfs.DirEntry, error) {
	resp, err := c.call(&NSRequest{Op: NSReadDir, Path: path}, true)
	if err != nil {
		return nil, err
	}
	return resp.Entries, resp.Err()
}

// Stat returns remote path metadata.
func (c *NSClient) Stat(path string) (vfs.FileInfo, error) {
	resp, err := c.call(&NSRequest{Op: NSStat, Path: path}, true)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return resp.Info, resp.Err()
}

// SetAttr applies a partial metadata update (absolute values; idempotent).
func (c *NSClient) SetAttr(path string, attr vfs.SetAttr) error {
	args := SetAttrArgs{}
	if attr.Size != nil {
		args.HasSize, args.Size = true, *attr.Size
	}
	if attr.Mode != nil {
		args.HasMode, args.Mode = true, uint32(*attr.Mode)
	}
	if attr.ModTime != nil {
		args.HasModTime, args.ModTime = true, int64(*attr.ModTime)
	}
	if attr.ATime != nil {
		args.HasATime, args.ATime = true, int64(*attr.ATime)
	}
	return c.callOK(&NSRequest{Op: NSSetAttr, Path: path, Attr: args}, true)
}

// Truncate sets a remote file's size by path (idempotent).
func (c *NSClient) Truncate(path string, size int64) error {
	return c.callOK(&NSRequest{Op: NSTruncate, Path: path, N: size}, true)
}

// Statfs reports remote capacity.
func (c *NSClient) Statfs() (vfs.StatFS, error) {
	resp, err := c.call(&NSRequest{Op: NSStatfs}, true)
	if err != nil {
		return vfs.StatFS{}, err
	}
	return resp.Stat, resp.Err()
}

// Sync persists the remote namespace.
func (c *NSClient) Sync() error {
	return c.callOK(&NSRequest{Op: NSSync}, true)
}

// NSFile is an open remote file, pinned to the pool slot whose connection
// holds its server-side handle.
type NSFile struct {
	c    *NSClient
	slot *nsSlot
	path string

	mu     sync.Mutex
	conn   *nsConn
	handle uint64
	closed bool
}

var _ vfs.File = (*NSFile)(nil)

// Path returns the path the handle was opened with.
func (f *NSFile) Path() string { return f.path }

// ensure returns a live connection and a valid handle on it, re-opening
// the file by path when the original connection died (server-side handles
// are connection-scoped).
func (f *NSFile) ensure() (*nsConn, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, 0, vfs.ErrClosed
	}
	conn, err := f.slot.get()
	if err != nil {
		return nil, 0, err
	}
	if conn != f.conn {
		resp, err := f.c.doBusy(f.slot, conn, &NSRequest{Op: NSOpen, Path: f.path})
		if err != nil {
			return nil, 0, err
		}
		if rerr := resp.Err(); rerr != nil {
			return nil, 0, rerr
		}
		f.conn, f.handle = conn, resp.Handle
		f.c.reopens.Add(1)
	}
	return f.conn, f.handle, nil
}

// rw issues one handle op with a single reconnect-reopen-retry; every
// handle op except Close is idempotent (absolute offsets, absolute sizes).
func (f *NSFile) rw(req *NSRequest) (*NSResponse, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, handle, err := f.ensure()
		if err != nil {
			if isConnErr(err) && lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		req.Handle = handle
		resp, err := f.c.doBusy(f.slot, conn, req)
		if err == nil {
			return resp, nil
		}
		if !isConnErr(err) {
			return nil, err
		}
		lastErr = err
		f.c.retries.Add(1)
	}
	return nil, lastErr
}

// ReadAt reads from the remote file. Requests larger than the server's
// negotiated payload cap are chunked into several wire reads.
func (f *NSFile) ReadAt(p []byte, off int64) (int, error) {
	max := f.c.MaxData()
	total := 0
	for {
		chunk := p[total:]
		if int64(len(chunk)) > max {
			chunk = chunk[:max]
		}
		resp, err := f.rw(&NSRequest{Op: NSRead, Off: off + int64(total), N: int64(len(chunk))})
		if err != nil {
			return total, err
		}
		if rerr := resp.Err(); rerr != nil {
			return total, rerr
		}
		n := copy(chunk, resp.Data)
		total += n
		if resp.EOF {
			return total, io.EOF
		}
		if n < len(chunk) || total == len(p) {
			return total, nil
		}
	}
}

// WriteAt writes to the remote file (absolute offset; idempotent).
// Payloads larger than the server's negotiated cap are chunked into
// several wire writes.
func (f *NSFile) WriteAt(p []byte, off int64) (int, error) {
	max := f.c.MaxData()
	total := 0
	for {
		chunk := p[total:]
		if int64(len(chunk)) > max {
			chunk = chunk[:max]
		}
		resp, err := f.rw(&NSRequest{Op: NSWrite, Off: off + int64(total), Data: chunk})
		if err != nil {
			return total, err
		}
		n := int(resp.N)
		total += n
		if rerr := resp.Err(); rerr != nil {
			return total, rerr
		}
		if n < len(chunk) {
			return total, io.ErrShortWrite
		}
		if total == len(p) {
			return total, nil
		}
	}
}

// Truncate sets the remote file's size.
func (f *NSFile) Truncate(size int64) error {
	resp, err := f.rw(&NSRequest{Op: NSTruncateHandle, N: size})
	if err != nil {
		return err
	}
	return resp.Err()
}

// PunchHole deallocates a remote range.
func (f *NSFile) PunchHole(off, n int64) error {
	resp, err := f.rw(&NSRequest{Op: NSPunch, Off: off, N: n})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Sync fsyncs the remote file.
func (f *NSFile) Sync() error {
	resp, err := f.rw(&NSRequest{Op: NSSyncHandle})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Stat returns the remote file's metadata.
func (f *NSFile) Stat() (vfs.FileInfo, error) {
	resp, err := f.rw(&NSRequest{Op: NSStatHandle})
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return resp.Info, resp.Err()
}

// Extents lists the remote file's allocated runs.
func (f *NSFile) Extents() ([]vfs.Extent, error) {
	resp, err := f.rw(&NSRequest{Op: NSExtents})
	if err != nil {
		return nil, err
	}
	return resp.Extents, resp.Err()
}

// Close releases the remote handle. If the connection already died, the
// server reaped the handle with it; closing is then a local no-op.
func (f *NSFile) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	conn, handle := f.conn, f.handle
	f.mu.Unlock()
	f.slot.mu.Lock()
	live := f.slot.cur == conn
	f.slot.mu.Unlock()
	if !live {
		return nil
	}
	resp, err := f.c.do(f.slot, conn, &NSRequest{Op: NSClose, Handle: handle})
	if err != nil {
		if isConnErr(err) {
			return nil // the connection's death closed the handle server-side
		}
		return err
	}
	return resp.Err()
}

// NSBatchOp is one sub-operation for Batch: a read (Read=true, N bytes at
// Off) or a write (Data at Off) against an open NSFile.
type NSBatchOp struct {
	File *NSFile
	Read bool
	Off  int64
	N    int
	Data []byte
}

// NSBatchResult is one sub-operation's outcome, in the order of the ops
// passed to Batch.
type NSBatchResult struct {
	N         int
	EOF       bool
	Data      []byte
	Err       error
	Coalesced bool
}

// Batch ships many small reads/writes in one request frame per pool slot.
// The server coalesces adjacent sub-ops per handle into single downward
// dispatches and replies per sub-op; results may have been executed in any
// order, so dependent ops (a read of a write's range) must not share a
// batch. Oversized batches split at the server's negotiated limit.
func (c *NSClient) Batch(ops []NSBatchOp) ([]NSBatchResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	results := make([]NSBatchResult, len(ops))
	maxData := c.MaxData()
	// Group op indexes by slot: handles are pinned to connections.
	groups := map[*nsSlot][]int{}
	for i, op := range ops {
		if op.File == nil {
			return nil, errors.New("muxrpc: batch op without a file")
		}
		if int64(op.N) > maxData || int64(len(op.Data)) > maxData {
			return nil, fmt.Errorf("%w: batch sub-op %d payload exceeds negotiated cap %d",
				vfs.ErrInvalid, i, maxData)
		}
		groups[op.File.slot] = append(groups[op.File.slot], i)
	}
	max := int(c.maxBatch.Load())
	if max <= 0 {
		max = len(ops)
	}
	for slot, idxs := range groups {
		// Frames split at the negotiated sub-op count AND at the payload
		// cap, which bounds a whole frame's payload sum server-side.
		for start := 0; start < len(idxs); {
			end := start
			var payload int64
			for end < len(idxs) && end-start < max {
				op := &ops[idxs[end]]
				sz := int64(op.N)
				if !op.Read {
					sz = int64(len(op.Data))
				}
				if end > start && payload+sz > maxData {
					break
				}
				payload += sz
				end++
			}
			if err := c.batchGroup(slot, ops, idxs[start:end], results); err != nil {
				return nil, err
			}
			start = end
		}
	}
	return results, nil
}

// batchGroup issues one NSBatch frame for the given op indexes, with a
// single reconnect-reopen-retry (batched reads and absolute-offset writes
// are idempotent).
func (c *NSClient) batchGroup(slot *nsSlot, ops []NSBatchOp, idxs []int, results []NSBatchResult) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		subs := make([]NSSubOp, 0, len(idxs))
		var conn *nsConn
		for _, i := range idxs {
			fconn, handle, err := ops[i].File.ensure()
			if err != nil {
				return err
			}
			conn = fconn
			sub := NSSubOp{ID: uint32(i), Handle: handle, Off: ops[i].Off}
			if ops[i].Read {
				sub.Op = NSRead
				sub.N = int64(ops[i].N)
			} else {
				sub.Op = NSWrite
				sub.Data = ops[i].Data
			}
			subs = append(subs, sub)
		}
		resp, err := c.doBusy(slot, conn, &NSRequest{Op: NSBatch, Batch: subs})
		if err != nil {
			if !isConnErr(err) {
				return err
			}
			lastErr = err
			c.retries.Add(1)
			continue
		}
		if rerr := resp.Err(); rerr != nil {
			return rerr
		}
		for _, sr := range resp.Batch {
			i := int(sr.ID)
			if i < 0 || i >= len(results) {
				continue
			}
			results[i] = NSBatchResult{
				N: int(sr.N), EOF: sr.EOF, Data: sr.Data,
				Err: sr.Err(), Coalesced: sr.Coalesced,
			}
		}
		return nil
	}
	return lastErr
}
