package muxrpc

import "sync/atomic"

// Pool observability: every counter the pooled clients track internally —
// dials, reconnects, handshake failures, per-slot in-flight depth — is
// exported here so the Mux telemetry snapshot and /metrics can surface
// them. Two views exist:
//
//   - Per-client PoolStats, reached through the RPCPoolStats interface the
//     core snapshot walks (a remote tier is its muxrpc.Client; a stripe
//     tier aggregates its node clients).
//   - Package-wide Totals covering dials that never produced a live Client
//     (failed dials and handshake failures tear the client down before
//     anything could snapshot it).

// tier-protocol package totals; see Totals.
var (
	tierDials          atomic.Int64
	tierDialErrors     atomic.Int64
	tierHandshakeFails atomic.Int64
)

// Totals reports package-wide connection-establishment counters across all
// clients, living and dead: successful socket dials, failed dials, and
// post-dial handshake failures.
func Totals() (dials, dialErrors, handshakeFailures int64) {
	return tierDials.Load(), tierDialErrors.Load(), tierHandshakeFails.Load()
}

// PoolStats is one pooled client's connection-level counters.
type PoolStats struct {
	Addr  string `json:"addr"`
	Slots int    `json:"slots"`

	// Dials counts successful socket dials, initial and reconnect;
	// Reconnects counts only lazy redials after a slot was invalidated by
	// a connection-level failure.
	Dials      int64 `json:"dials"`
	Reconnects int64 `json:"reconnects"`
	DialErrors int64 `json:"dial_errors"`

	// Calls counts call attempts issued over the pool (retries included);
	// ConnErrors the attempts that died at the connection level; Retries
	// the idempotent reconnect-and-retry attempts.
	Calls      int64 `json:"calls"`
	ConnErrors int64 `json:"conn_errors"`
	Retries    int64 `json:"retries"`

	// InFlight is the per-slot count of calls currently on the wire.
	InFlight []int64 `json:"in_flight"`
}

// InFlightTotal sums the per-slot depths.
func (s PoolStats) InFlightTotal() int64 {
	var t int64
	for _, v := range s.InFlight {
		t += v
	}
	return t
}

// PoolStats snapshots the client's pool counters.
func (c *Client) PoolStats() PoolStats {
	st := PoolStats{
		Addr:       c.addr,
		Slots:      len(c.conns),
		Dials:      c.dials.Load(),
		Reconnects: c.reconnects.Load(),
		DialErrors: c.dialErrs.Load(),
		Calls:      c.calls.Load(),
		ConnErrors: c.connErrs.Load(),
		Retries:    c.retries.Load(),
		InFlight:   make([]int64, 0, len(c.conns)),
	}
	for _, pc := range c.conns {
		if pc == nil {
			st.InFlight = append(st.InFlight, 0)
			continue
		}
		st.InFlight = append(st.InFlight, pc.inflight.Load())
	}
	return st
}

// RPCPoolStats satisfies the pool-stats interface the core telemetry
// snapshot discovers structurally on tier backends.
func (c *Client) RPCPoolStats() []PoolStats { return []PoolStats{c.PoolStats()} }
