package muxrpc

import (
	"errors"
	"io"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"muxfs/internal/vfs"
)

// Server exposes one vfs.FileSystem over net/rpc. Open files are tracked by
// handle id; a vanished client leaks handles until the server stops, which
// is acceptable for the prototype (§4 lists full fault handling as open).
type Server struct {
	fs vfs.FileSystem

	mu      sync.Mutex
	handles map[uint64]vfs.File
	nextID  uint64

	// Connection/call lifecycle for graceful shutdown: Drain waits for
	// calls already executing to finish before the connections are torn
	// down, so an orderly stop never cuts an RPC mid-flight.
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	inflight atomic.Int64
}

// NewServer wraps fs for remote service.
func NewServer(fs vfs.FileSystem) *Server {
	return &Server{fs: fs, handles: map[uint64]vfs.File{}, nextID: 1, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on l until the listener closes. It blocks;
// run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("MuxTier", s); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		go func() {
			srv.ServeConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// begin marks one RPC call in flight; the returned func ends it. Every
// exported method calls it first, so Drain can wait for genuine quiescence
// rather than just closed sockets.
func (s *Server) begin() func() {
	s.inflight.Add(1)
	return func() { s.inflight.Add(-1) }
}

// InFlight reports the number of RPC calls currently executing.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Drain performs an orderly shutdown of the connection side: the caller
// closes the listener first (so no new connections arrive), then Drain
// waits up to timeout for in-flight calls to complete and closes every
// remaining connection. Calls that arrive on open connections during the
// drain window still execute; the window closes when the server goes
// quiescent or the timeout expires, whichever is first. It returns the
// number of calls still executing when connections were severed (0 for a
// clean drain).
func (s *Server) Drain(timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cut := s.inflight.Load()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.connMu.Unlock()
	return cut
}

func (s *Server) track(f vfs.File) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.handles[id] = f
	return id
}

func (s *Server) handle(id uint64) (vfs.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.handles[id]
	if !ok {
		return nil, vfs.ErrClosed
	}
	return f, nil
}

// Name reports the wrapped file system's name.
func (s *Server) Name(_ struct{}, reply *NameReply) error {
	defer s.begin()()
	reply.Name = s.fs.Name()
	return nil
}

// Create makes and opens a file.
func (s *Server) Create(args PathArgs, reply *HandleReply) error {
	defer s.begin()()
	f, err := s.fs.Create(args.Path)
	if err == nil {
		reply.Handle = s.track(f)
	}
	reply.Status = status(err)
	return nil
}

// Open opens a file.
func (s *Server) Open(args PathArgs, reply *HandleReply) error {
	defer s.begin()()
	f, err := s.fs.Open(args.Path)
	if err == nil {
		reply.Handle = s.track(f)
	}
	reply.Status = status(err)
	return nil
}

// Remove deletes a file or empty directory.
func (s *Server) Remove(args PathArgs, reply *OKReply) error {
	defer s.begin()()
	reply.Status = status(s.fs.Remove(args.Path))
	return nil
}

// Rename moves a file.
func (s *Server) Rename(args RenameArgs, reply *OKReply) error {
	defer s.begin()()
	reply.Status = status(s.fs.Rename(args.Old, args.New))
	return nil
}

// Mkdir creates a directory.
func (s *Server) Mkdir(args PathArgs, reply *OKReply) error {
	defer s.begin()()
	reply.Status = status(s.fs.Mkdir(args.Path))
	return nil
}

// ReadDir lists a directory.
func (s *Server) ReadDir(args PathArgs, reply *ReadDirReply) error {
	defer s.begin()()
	ents, err := s.fs.ReadDir(args.Path)
	reply.Entries = ents
	reply.Status = status(err)
	return nil
}

// Stat returns path metadata.
func (s *Server) Stat(args PathArgs, reply *StatReply) error {
	defer s.begin()()
	fi, err := s.fs.Stat(args.Path)
	reply.Info = fi
	reply.Status = status(err)
	return nil
}

// SetAttr applies a partial metadata update.
func (s *Server) SetAttr(args SetAttrArgs, reply *OKReply) error {
	defer s.begin()()
	var attr vfs.SetAttr
	if args.HasSize {
		attr.Size = &args.Size
	}
	if args.HasMode {
		m := vfs.FileMode(args.Mode)
		attr.Mode = &m
	}
	if args.HasModTime {
		d := time.Duration(args.ModTime)
		attr.ModTime = &d
	}
	if args.HasATime {
		d := time.Duration(args.ATime)
		attr.ATime = &d
	}
	reply.Status = status(s.fs.SetAttr(args.Path, attr))
	return nil
}

// Truncate sets a file's size by path.
func (s *Server) Truncate(args TruncatePathArgs, reply *OKReply) error {
	defer s.begin()()
	reply.Status = status(s.fs.Truncate(args.Path, args.Size))
	return nil
}

// Statfs reports capacity accounting.
func (s *Server) Statfs(_ struct{}, reply *StatfsReply) error {
	defer s.begin()()
	st, err := s.fs.Statfs()
	reply.Stat = st
	reply.Status = status(err)
	return nil
}

// Sync persists the whole file system.
func (s *Server) Sync(_ struct{}, reply *OKReply) error {
	defer s.begin()()
	reply.Status = status(s.fs.Sync())
	return nil
}

// ReadAt serves a handle read.
func (s *Server) ReadAt(args ReadArgs, reply *ReadReply) error {
	defer s.begin()()
	f, err := s.handle(args.Handle)
	if err != nil {
		reply.Status = status(err)
		return nil
	}
	buf := make([]byte, args.N)
	n, err := f.ReadAt(buf, args.Off)
	reply.Data = buf[:n]
	if errors.Is(err, io.EOF) {
		reply.EOF = true
		err = nil
	}
	reply.Status = status(err)
	return nil
}

// WriteAt serves a handle write.
func (s *Server) WriteAt(args WriteArgs, reply *WriteReply) error {
	defer s.begin()()
	f, err := s.handle(args.Handle)
	if err != nil {
		reply.Status = status(err)
		return nil
	}
	n, err := f.WriteAt(args.Data, args.Off)
	reply.N = n
	reply.Status = status(err)
	return nil
}

// TruncateHandle sets an open file's size.
func (s *Server) TruncateHandle(args TruncateArgs, reply *OKReply) error {
	defer s.begin()()
	f, err := s.handle(args.Handle)
	if err != nil {
		reply.Status = status(err)
		return nil
	}
	reply.Status = status(f.Truncate(args.Size))
	return nil
}

// SyncHandle fsyncs an open file.
func (s *Server) SyncHandle(args HandleArgs, reply *OKReply) error {
	defer s.begin()()
	f, err := s.handle(args.Handle)
	if err != nil {
		reply.Status = status(err)
		return nil
	}
	reply.Status = status(f.Sync())
	return nil
}

// CloseHandle releases an open file.
func (s *Server) CloseHandle(args HandleArgs, reply *OKReply) error {
	defer s.begin()()
	s.mu.Lock()
	f, ok := s.handles[args.Handle]
	delete(s.handles, args.Handle)
	s.mu.Unlock()
	if !ok {
		reply.Status = status(vfs.ErrClosed)
		return nil
	}
	reply.Status = status(f.Close())
	return nil
}

// StatHandle returns an open file's metadata.
func (s *Server) StatHandle(args HandleArgs, reply *StatReply) error {
	defer s.begin()()
	f, err := s.handle(args.Handle)
	if err != nil {
		reply.Status = status(err)
		return nil
	}
	fi, err := f.Stat()
	reply.Info = fi
	reply.Status = status(err)
	return nil
}

// Extents lists an open file's allocated runs.
func (s *Server) Extents(args HandleArgs, reply *ExtentsReply) error {
	defer s.begin()()
	f, err := s.handle(args.Handle)
	if err != nil {
		reply.Status = status(err)
		return nil
	}
	exts, err := f.Extents()
	reply.Extents = exts
	reply.Status = status(err)
	return nil
}

// PunchHole deallocates a range of an open file.
func (s *Server) PunchHole(args PunchArgs, reply *OKReply) error {
	defer s.begin()()
	f, err := s.handle(args.Handle)
	if err != nil {
		reply.Status = status(err)
		return nil
	}
	reply.Status = status(f.PunchHole(args.Off, args.N))
	return nil
}

// Crash injects a simulated power failure on the served file system, when
// it supports fault injection (testing/fault drills for Distributed Mux).
func (s *Server) Crash(_ struct{}, reply *OKReply) error {
	defer s.begin()()
	if cr, ok := s.fs.(vfs.CrashRecoverer); ok {
		cr.Crash()
		reply.Status = status(nil)
	} else {
		reply.Status = status(vfs.ErrInvalid)
	}
	return nil
}

// Recover replays the served file system's recovery path.
func (s *Server) Recover(_ struct{}, reply *OKReply) error {
	defer s.begin()()
	if cr, ok := s.fs.(vfs.CrashRecoverer); ok {
		reply.Status = status(cr.Recover())
	} else {
		reply.Status = status(vfs.ErrInvalid)
	}
	return nil
}
