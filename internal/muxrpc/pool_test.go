package muxrpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/fs/xfslite"
	"muxfs/internal/simclock"
)

// trackedListener records accepted connections so tests can kill the
// established sockets (not just the accept loop), simulating a node that
// drops off the network mid-call.
type trackedListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (tl *trackedListener) Accept() (net.Conn, error) {
	c, err := tl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	tl.mu.Lock()
	tl.conns = append(tl.conns, c)
	tl.mu.Unlock()
	return c, nil
}

func (tl *trackedListener) killConns() {
	tl.mu.Lock()
	for _, c := range tl.conns {
		c.Close()
	}
	tl.conns = nil
	tl.mu.Unlock()
}

// serveNode starts a muxrpc server over a fresh xfslite on a loopback
// listener and returns the tracked listener.
func serveNode(t *testing.T) *trackedListener {
	t.Helper()
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs, err := xfslite.New("xfs@remote", dev)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tl := &trackedListener{Listener: l}
	t.Cleanup(func() { tl.Close() })
	srv := NewServer(fs)
	go srv.Serve(tl)
	return tl
}

func TestDialPoolSize(t *testing.T) {
	tl := serveNode(t)
	c, err := DialPool("tcp", tl.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.PoolSize() != 4 {
		t.Fatalf("PoolSize = %d, want 4", c.PoolSize())
	}
	// Round-robin must route calls on every slot without error.
	for i := 0; i < 16; i++ {
		if _, err := c.Statfs(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestHandshakeFailure dials a TCP server that is not speaking muxrpc:
// the dial succeeds, the handshake must fail with the typed sentinel and
// every pooled connection must be torn down.
func TestHandshakeFailure(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Corrupt frame: bytes that are not a gob rpc response.
			conn.Write([]byte("HTTP/1.0 400 Bad Request\r\n\r\nnot muxrpc"))
			conn.Close()
		}
	}()
	_, err = DialPool("tcp", l.Addr().String(), 3)
	if err == nil {
		t.Fatal("handshake against non-muxrpc server succeeded")
	}
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("error %v is not ErrHandshake", err)
	}
}

// TestShortFrameMidCall kills the established sockets while calls are
// outstanding: in-flight calls may fail, but the client must recover on
// its own for idempotent calls (reconnect + one retry) without the caller
// seeing an error on the next operation.
func TestShortFrameMidCall(t *testing.T) {
	tl := serveNode(t)
	c, err := DialPool("tcp", tl.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5a}, 8192)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Sever every established connection. The server stays up, so handles
	// survive; the idempotent retry must redial and complete.
	tl.killConns()
	buf := make([]byte, len(data))
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		t.Fatalf("ReadAt after connection kill: %v", err)
	}
	if n != len(data) || !bytes.Equal(buf, data) {
		t.Fatalf("ReadAt after reconnect returned wrong bytes (n=%d)", n)
	}
	if _, err := f.WriteAt(data, 8192); err != nil {
		t.Fatalf("WriteAt after connection kill: %v", err)
	}
}

// TestServerRestartMidCall restarts the whole server (listener + conns)
// on the same address. Handles are lost with the server's handle table;
// path-level idempotent calls must succeed after the restart via
// reconnect, and stale handles must fail with a decoded vfs error rather
// than a transport error.
func TestServerRestartMidCall(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	tl := &trackedListener{Listener: l}
	dev := device.New(device.SSDProfile("ssd0"), simclock.New())
	fs1, err := xfslite.New("xfs@remote", dev)
	if err != nil {
		t.Fatal(err)
	}
	go NewServer(fs1).Serve(tl)

	c, err := DialPool("tcp", addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Create("/keep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}

	// Restart: kill listener and conns, bring up a new server on the same
	// address backed by the same FS (state persisted, handles lost).
	tl.Close()
	tl.killConns()
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go NewServer(fs1).Serve(l2)

	// Path-level idempotent call reconnects transparently.
	if _, err := c.Stat("/keep"); err != nil {
		t.Fatalf("Stat after server restart: %v", err)
	}
	// The old handle is gone server-side: the retry reconnects and the
	// server answers with a logical error, not a transport failure.
	_, err = f.ReadAt(make([]byte, 3), 0)
	if err == nil {
		t.Fatal("read on a handle lost by restart succeeded")
	}
	if isConnErr(err) {
		t.Fatalf("handle-lost error %v leaked as a transport error", err)
	}
	// Fresh open works and reads the persisted bytes.
	f2, err := c.Open("/keep")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f2.ReadAt(buf, 0); err != nil && err.Error() != "EOF" {
		t.Fatalf("ReadAt on reopened file: %v", err)
	}
	if string(buf) != "abc" {
		t.Fatalf("reopened read = %q", buf)
	}
}

// TestConcurrentPoolCalls hammers one client from many goroutines (run
// under -race): distinct files, interleaved reads/writes/stats through
// every pool slot.
func TestConcurrentPoolCalls(t *testing.T) {
	tl := serveNode(t)
	c, err := DialPool("tcp", tl.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers = 8
	const opsPer = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/w%d", w)
			f, err := c.Create(path)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			pat := bytes.Repeat([]byte{byte(w + 1)}, 4096)
			for i := 0; i < opsPer; i++ {
				off := int64(i%4) * 4096
				if _, err := f.WriteAt(pat, off); err != nil {
					errs <- fmt.Errorf("w%d write: %w", w, err)
					return
				}
				buf := make([]byte, 4096)
				if _, err := f.ReadAt(buf, off); err != nil {
					errs <- fmt.Errorf("w%d read: %w", w, err)
					return
				}
				if !bytes.Equal(buf, pat) {
					errs <- fmt.Errorf("w%d: cross-talk between pooled calls", w)
					return
				}
				if _, err := c.Stat(path); err != nil {
					errs <- fmt.Errorf("w%d stat: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
