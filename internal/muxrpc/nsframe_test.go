package muxrpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
)

// TestNSFrameRoundtrip runs gob messages through the frame layer and back.
func TestNSFrameRoundtrip(t *testing.T) {
	var wire bytes.Buffer
	fw := NewNSFrameWriter(&wire)
	enc := gob.NewEncoder(fw)
	reqs := []*NSRequest{
		{Seq: 1, Op: NSHello, N: NSProtoVersion},
		{Seq: 2, Op: NSWrite, Handle: 7, Off: 512, Data: bytes.Repeat([]byte{9}, 4096)},
		{Seq: 3, Op: NSStat, Path: "/a/b"},
	}
	for _, r := range reqs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	dec := gob.NewDecoder(NewNSFrameReader(&wire, 64<<10))
	for i, want := range reqs {
		got := &NSRequest{}
		if err := dec.Decode(got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Op != want.Op || got.Path != want.Path ||
			!bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d mismatch: %+v", i, got)
		}
	}
}

// TestNSFrameCap checks an over-cap length prefix is rejected from the
// header alone — the payload is never read, let alone allocated.
func TestNSFrameCap(t *testing.T) {
	var wire bytes.Buffer
	fw := NewNSFrameWriter(&wire)
	enc := gob.NewEncoder(fw)
	if err := enc.Encode(&NSRequest{Seq: 1, Op: NSWrite, Data: bytes.Repeat([]byte{1}, 8192)}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := gob.NewDecoder(NewNSFrameReader(bytes.NewReader(wire.Bytes()), 1024))
	if err := dec.Decode(&NSRequest{}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("decode over cap: %v, want ErrFrameTooBig", err)
	}

	// The same bytes decode fine once SetMax widens the cap.
	fr := NewNSFrameReader(bytes.NewReader(wire.Bytes()), 1024)
	fr.SetMax(64 << 10)
	if err := gob.NewDecoder(fr).Decode(&NSRequest{}); err != nil {
		t.Fatalf("decode under raised cap: %v", err)
	}
}
