// Package extent implements an extent tree: an ordered map from
// non-overlapping byte ranges to values.
//
// The paper uses extent trees in three places, and so does this repo: the
// Mux Block Lookup Table maps file offsets to the tier holding the current
// version of each block (§2.2, "we use an extent tree as a high-performance
// data structure"), xfslite uses one for file block maps and free space, and
// the Strata baseline uses a single global one (whose coarse locking is one
// of the performance problems §3.1 attributes to Strata).
package extent

import "sort"

type entry[V comparable] struct {
	off, end int64 // [off, end)
	val      V
}

// Tree maps non-overlapping half-open byte ranges [off, end) to values.
// Inserting over an existing range splits or replaces it; adjacent ranges
// with equal values coalesce. The zero value is an empty tree. Tree is not
// safe for concurrent use; callers synchronize (Mux keeps one per file under
// the file's bookkeeping lock).
type Tree[V comparable] struct {
	ents []entry[V]
}

// Segment is one run returned by a range walk. Hole marks unmapped gaps.
type Segment[V comparable] struct {
	Off  int64
	Len  int64
	Val  V
	Hole bool
}

// End returns the first offset past the segment.
func (s Segment[V]) End() int64 { return s.Off + s.Len }

// firstOverlapping returns the index of the first entry with end > off.
func (t *Tree[V]) firstOverlapping(off int64) int {
	return sort.Search(len(t.ents), func(i int) bool { return t.ents[i].end > off })
}

// Insert maps [off, off+n) to v, replacing any previous mappings in the
// range. Zero or negative n is a no-op.
func (t *Tree[V]) Insert(off, n int64, v V) {
	if n <= 0 {
		return
	}
	end := off + n
	i := t.firstOverlapping(off)

	// Entries strictly before the insertion point stay.
	head := t.ents[:i]

	var mid []entry[V]
	// Left remainder of a straddling entry.
	if i < len(t.ents) && t.ents[i].off < off {
		mid = append(mid, entry[V]{t.ents[i].off, off, t.ents[i].val})
	}
	mid = append(mid, entry[V]{off, end, v})

	// Skip entries fully covered; keep the right remainder of the last
	// overlapped entry.
	j := i
	for j < len(t.ents) && t.ents[j].off < end {
		if t.ents[j].end > end {
			mid = append(mid, entry[V]{end, t.ents[j].end, t.ents[j].val})
		}
		j++
	}

	out := make([]entry[V], 0, len(head)+len(mid)+len(t.ents)-j)
	out = append(out, head...)
	out = append(out, mid...)
	out = append(out, t.ents[j:]...)
	t.ents = coalesce(out)
}

// Delete unmaps [off, off+n), splitting straddling entries.
func (t *Tree[V]) Delete(off, n int64) {
	if n <= 0 {
		return
	}
	end := off + n
	i := t.firstOverlapping(off)
	head := t.ents[:i]

	var mid []entry[V]
	j := i
	for j < len(t.ents) && t.ents[j].off < end {
		e := t.ents[j]
		if e.off < off {
			mid = append(mid, entry[V]{e.off, off, e.val})
		}
		if e.end > end {
			mid = append(mid, entry[V]{end, e.end, e.val})
		}
		j++
	}

	out := make([]entry[V], 0, len(head)+len(mid)+len(t.ents)-j)
	out = append(out, head...)
	out = append(out, mid...)
	out = append(out, t.ents[j:]...)
	t.ents = out // nothing new to coalesce: deletion cannot join neighbors
}

// Lookup returns the value and full mapped run containing off.
func (t *Tree[V]) Lookup(off int64) (v V, seg Segment[V], ok bool) {
	i := t.firstOverlapping(off)
	if i >= len(t.ents) || t.ents[i].off > off {
		return v, Segment[V]{}, false
	}
	e := t.ents[i]
	return e.val, Segment[V]{Off: e.off, Len: e.end - e.off, Val: e.val}, true
}

// Segments walks [off, off+n) in order, returning mapped runs clipped to the
// range and Hole segments for unmapped gaps. The segments exactly tile the
// requested range.
func (t *Tree[V]) Segments(off, n int64) []Segment[V] {
	var out []Segment[V]
	if n <= 0 {
		return out
	}
	end := off + n
	pos := off
	for i := t.firstOverlapping(off); i < len(t.ents) && pos < end; i++ {
		e := t.ents[i]
		if e.off >= end {
			break
		}
		if e.off > pos {
			out = append(out, Segment[V]{Off: pos, Len: e.off - pos, Hole: true})
			pos = e.off
		}
		segEnd := e.end
		if segEnd > end {
			segEnd = end
		}
		out = append(out, Segment[V]{Off: pos, Len: segEnd - pos, Val: e.val})
		pos = segEnd
	}
	if pos < end {
		out = append(out, Segment[V]{Off: pos, Len: end - pos, Hole: true})
	}
	return out
}

// Walk calls fn for every mapped run in offset order until fn returns false.
func (t *Tree[V]) Walk(fn func(off, n int64, v V) bool) {
	for _, e := range t.ents {
		if !fn(e.off, e.end-e.off, e.val) {
			return
		}
	}
}

// Len returns the number of distinct mapped runs.
func (t *Tree[V]) Len() int { return len(t.ents) }

// MappedBytes returns the total number of mapped bytes.
func (t *Tree[V]) MappedBytes() int64 {
	var total int64
	for _, e := range t.ents {
		total += e.end - e.off
	}
	return total
}

// Bounds returns the lowest mapped offset and the highest mapped end
// (0, 0 for an empty tree).
func (t *Tree[V]) Bounds() (lo, hi int64) {
	if len(t.ents) == 0 {
		return 0, 0
	}
	return t.ents[0].off, t.ents[len(t.ents)-1].end
}

// Clone returns a deep copy.
func (t *Tree[V]) Clone() *Tree[V] {
	c := &Tree[V]{ents: make([]entry[V], len(t.ents))}
	copy(c.ents, t.ents)
	return c
}

// Clear removes all mappings.
func (t *Tree[V]) Clear() { t.ents = t.ents[:0] }

// coalesce merges adjacent entries with equal values. Input must be sorted
// and non-overlapping.
func coalesce[V comparable](ents []entry[V]) []entry[V] {
	if len(ents) < 2 {
		return ents
	}
	out := ents[:1]
	for _, e := range ents[1:] {
		last := &out[len(out)-1]
		if last.end == e.off && last.val == e.val {
			last.end = e.end
		} else {
			out = append(out, e)
		}
	}
	return out
}
