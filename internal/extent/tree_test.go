package extent

import (
	"math/rand"
	"testing"
)

func segs(t *Tree[int], off, n int64) []Segment[int] { return t.Segments(off, n) }

func TestEmptyTree(t *testing.T) {
	var tr Tree[int]
	if tr.Len() != 0 || tr.MappedBytes() != 0 {
		t.Fatal("empty tree not empty")
	}
	if _, _, ok := tr.Lookup(0); ok {
		t.Fatal("lookup hit in empty tree")
	}
	got := segs(&tr, 0, 100)
	if len(got) != 1 || !got[0].Hole || got[0].Len != 100 {
		t.Fatalf("segments of empty tree = %+v", got)
	}
	lo, hi := tr.Bounds()
	if lo != 0 || hi != 0 {
		t.Fatalf("Bounds = %d,%d", lo, hi)
	}
}

func TestInsertLookup(t *testing.T) {
	var tr Tree[int]
	tr.Insert(100, 50, 1)
	v, seg, ok := tr.Lookup(120)
	if !ok || v != 1 || seg.Off != 100 || seg.Len != 50 {
		t.Fatalf("Lookup = %v %+v %v", v, seg, ok)
	}
	if _, _, ok := tr.Lookup(99); ok {
		t.Fatal("lookup before extent hit")
	}
	if _, _, ok := tr.Lookup(150); ok {
		t.Fatal("lookup at end (exclusive) hit")
	}
}

func TestInsertCoalesces(t *testing.T) {
	var tr Tree[int]
	tr.Insert(0, 10, 7)
	tr.Insert(10, 10, 7)
	if tr.Len() != 1 {
		t.Fatalf("adjacent equal values did not coalesce: %d runs", tr.Len())
	}
	tr.Insert(20, 10, 8)
	if tr.Len() != 2 {
		t.Fatalf("different values coalesced: %d runs", tr.Len())
	}
	if tr.MappedBytes() != 30 {
		t.Fatalf("MappedBytes = %d", tr.MappedBytes())
	}
}

func TestInsertSplitsMiddle(t *testing.T) {
	var tr Tree[int]
	tr.Insert(0, 100, 1)
	tr.Insert(40, 20, 2)
	want := []Segment[int]{
		{Off: 0, Len: 40, Val: 1},
		{Off: 40, Len: 20, Val: 2},
		{Off: 60, Len: 40, Val: 1},
	}
	got := segs(&tr, 0, 100)
	if len(got) != len(want) {
		t.Fatalf("segments = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestInsertOverwritesCovered(t *testing.T) {
	var tr Tree[int]
	tr.Insert(10, 10, 1)
	tr.Insert(30, 10, 2)
	tr.Insert(0, 100, 3) // covers everything
	if tr.Len() != 1 {
		t.Fatalf("full overwrite left %d runs", tr.Len())
	}
	v, _, _ := tr.Lookup(15)
	if v != 3 {
		t.Fatalf("covered value survived: %d", v)
	}
}

func TestInsertStraddleBoth(t *testing.T) {
	var tr Tree[int]
	tr.Insert(0, 30, 1)
	tr.Insert(50, 30, 2)
	tr.Insert(20, 40, 9) // clips tail of first, head of second
	want := []Segment[int]{
		{Off: 0, Len: 20, Val: 1},
		{Off: 20, Len: 40, Val: 9},
		{Off: 60, Len: 20, Val: 2},
	}
	got := segs(&tr, 0, 80)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDelete(t *testing.T) {
	var tr Tree[int]
	tr.Insert(0, 100, 1)
	tr.Delete(40, 20)
	got := segs(&tr, 0, 100)
	want := []Segment[int]{
		{Off: 0, Len: 40, Val: 1},
		{Off: 40, Len: 20, Hole: true},
		{Off: 60, Len: 40, Val: 1},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if tr.MappedBytes() != 80 {
		t.Fatalf("MappedBytes after delete = %d", tr.MappedBytes())
	}
	tr.Delete(0, 1000)
	if tr.Len() != 0 {
		t.Fatal("full delete left runs")
	}
}

func TestSegmentsPartialRange(t *testing.T) {
	var tr Tree[int]
	tr.Insert(100, 100, 5)
	got := segs(&tr, 150, 100)
	want := []Segment[int]{
		{Off: 150, Len: 50, Val: 5},
		{Off: 200, Len: 50, Hole: true},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Segments must exactly tile the request.
	var total int64
	for _, s := range got {
		total += s.Len
	}
	if total != 100 {
		t.Fatalf("segments tile %d bytes, want 100", total)
	}
}

func TestZeroLengthOps(t *testing.T) {
	var tr Tree[int]
	tr.Insert(0, 0, 1)
	tr.Insert(5, -3, 1)
	tr.Delete(0, 0)
	if tr.Len() != 0 {
		t.Fatal("zero-length ops mutated tree")
	}
	if got := tr.Segments(10, 0); got != nil {
		t.Fatalf("zero-length segments = %+v", got)
	}
}

func TestWalkAndClone(t *testing.T) {
	var tr Tree[int]
	tr.Insert(0, 10, 1)
	tr.Insert(20, 10, 2)
	var visited int
	tr.Walk(func(off, n int64, v int) bool { visited++; return true })
	if visited != 2 {
		t.Fatalf("walk visited %d", visited)
	}
	visited = 0
	tr.Walk(func(off, n int64, v int) bool { visited++; return false })
	if visited != 1 {
		t.Fatalf("early-stop walk visited %d", visited)
	}

	c := tr.Clone()
	c.Insert(0, 100, 9)
	if v, _, _ := tr.Lookup(5); v != 1 {
		t.Fatal("clone mutation leaked into original")
	}
	tr.Clear()
	if tr.Len() != 0 {
		t.Fatal("Clear left runs")
	}
	if c.Len() == 0 {
		t.Fatal("Clear on original affected clone")
	}
}

func TestBounds(t *testing.T) {
	var tr Tree[int]
	tr.Insert(50, 10, 1)
	tr.Insert(200, 10, 2)
	lo, hi := tr.Bounds()
	if lo != 50 || hi != 210 {
		t.Fatalf("Bounds = %d,%d", lo, hi)
	}
}

// TestAgainstNaiveModel cross-checks random Insert/Delete sequences against a
// per-byte reference model.
func TestAgainstNaiveModel(t *testing.T) {
	const space = 512
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var tr Tree[int]
		model := make([]int, space) // 0 = hole
		for op := 0; op < 30; op++ {
			off := int64(rng.Intn(space))
			n := int64(rng.Intn(space/4) + 1)
			if off+n > space {
				n = space - off
			}
			if rng.Intn(4) == 0 {
				tr.Delete(off, n)
				for i := off; i < off+n; i++ {
					model[i] = 0
				}
			} else {
				v := rng.Intn(3) + 1
				tr.Insert(off, n, v)
				for i := off; i < off+n; i++ {
					model[i] = v
				}
			}
		}
		// Compare every byte via Segments over the whole space.
		pos := int64(0)
		for _, s := range tr.Segments(0, space) {
			if s.Off != pos {
				t.Fatalf("trial %d: segment gap at %d (segment %+v)", trial, pos, s)
			}
			for i := s.Off; i < s.End(); i++ {
				want := model[i]
				if s.Hole && want != 0 {
					t.Fatalf("trial %d: byte %d hole, model has %d", trial, i, want)
				}
				if !s.Hole && s.Val != want {
					t.Fatalf("trial %d: byte %d = %d, model has %d", trial, i, s.Val, want)
				}
			}
			pos = s.End()
		}
		if pos != space {
			t.Fatalf("trial %d: segments tile %d bytes", trial, pos)
		}
		// Invariant: runs are sorted, non-overlapping, non-empty, coalesced.
		var prevEnd int64 = -1
		var prevVal int
		first := true
		tr.Walk(func(off, n int64, v int) bool {
			if n <= 0 {
				t.Fatalf("trial %d: empty run", trial)
			}
			if !first && off < prevEnd {
				t.Fatalf("trial %d: overlapping runs", trial)
			}
			if !first && off == prevEnd && v == prevVal {
				t.Fatalf("trial %d: uncoalesced neighbors", trial)
			}
			prevEnd, prevVal, first = off+n, v, false
			return true
		})
	}
}
