package fstest

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"muxfs/internal/vfs"
)

func durOf(n int64) time.Duration { return time.Duration(n) }

// CrashMaker builds a file system plus a crash function that simulates power
// loss (dropping un-persisted device state and DRAM caches) and returns the
// *recovered* file system — either the same instance after Recover or a
// fresh instance mounted over the same devices.
type CrashMaker func(t *testing.T) (fs vfs.FileSystem, crash func() vfs.FileSystem)

// RunCrashRecovery exercises the crash-consistency contract: synced state
// survives a crash; unsynced state may vanish but never corrupts what was
// synced.
func RunCrashRecovery(t *testing.T, mk CrashMaker) {
	t.Run("SyncedDataSurvives", func(t *testing.T) { testSyncedDataSurvives(t, mk) })
	t.Run("SyncedNamespaceSurvives", func(t *testing.T) { testSyncedNamespaceSurvives(t, mk) })
	t.Run("UnsyncedDataMayVanishButSyncedIntact", func(t *testing.T) { testUnsyncedVanishes(t, mk) })
	t.Run("RemoveSurvives", func(t *testing.T) { testRemoveSurvives(t, mk) })
	t.Run("RenameSurvives", func(t *testing.T) { testRenameSurvives(t, mk) })
	t.Run("TruncateSurvives", func(t *testing.T) { testTruncateSurvives(t, mk) })
	t.Run("RepeatedCrashes", func(t *testing.T) { testRepeatedCrashes(t, mk) })
}

func testSyncedDataSurvives(t *testing.T, mk CrashMaker) {
	fs, crash := mk(t)
	f := mustCreate(t, fs, "/durable")
	payload := seqBytes(64 * 1024)
	mustWrite(t, f, payload, 0)
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	f.Close()

	rfs := crash()
	f2, err := rfs.Open("/durable")
	if err != nil {
		t.Fatalf("synced file lost after crash: %v", err)
	}
	defer f2.Close()
	got := mustRead(t, f2, len(payload), 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("synced data corrupted by crash")
	}
	fi, _ := rfs.Stat("/durable")
	if fi.Size != int64(len(payload)) {
		t.Fatalf("size after recovery = %d, want %d", fi.Size, len(payload))
	}
}

func testSyncedNamespaceSurvives(t *testing.T, mk CrashMaker) {
	fs, crash := mk(t)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, fs, "/d/f").Close()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rfs := crash()
	ents, err := rfs.ReadDir("/d")
	if err != nil || len(ents) != 2 {
		t.Fatalf("namespace lost: %+v, %v", ents, err)
	}
	fi, err := rfs.Stat("/d/sub")
	if err != nil || !fi.IsDir() {
		t.Fatalf("subdir lost: %+v, %v", fi, err)
	}
}

func testUnsyncedVanishes(t *testing.T, mk CrashMaker) {
	fs, crash := mk(t)
	f := mustCreate(t, fs, "/a")
	mustWrite(t, f, []byte("synced-part"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced follow-up write.
	mustWrite(t, f, []byte("UNSYNCED"), 100)
	f.Close()

	rfs := crash()
	f2, err := rfs.Open("/a")
	if err != nil {
		t.Fatalf("file lost: %v", err)
	}
	defer f2.Close()
	got := mustRead(t, f2, 11, 0)
	if string(got) != "synced-part" {
		t.Fatalf("synced prefix corrupted: %q", got)
	}
	// The unsynced tail either vanished (size 11) or fully survived
	// (size 108) — both are legal; torn garbage is not.
	fi, _ := f2.Stat()
	if fi.Size != 11 && fi.Size != 108 {
		t.Fatalf("size after crash = %d, want 11 or 108", fi.Size)
	}
	if fi.Size == 108 {
		tail := mustRead(t, f2, 8, 100)
		if string(tail) != "UNSYNCED" {
			t.Fatalf("surviving tail torn: %q", tail)
		}
	}
}

func testRemoveSurvives(t *testing.T, mk CrashMaker) {
	fs, crash := mk(t)
	mustCreate(t, fs, "/doomed").Close()
	fs.Sync()
	if err := fs.Remove("/doomed"); err != nil {
		t.Fatal(err)
	}
	fs.Sync()
	rfs := crash()
	if _, err := rfs.Stat("/doomed"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("removed file resurrected: %v", err)
	}
}

func testRenameSurvives(t *testing.T, mk CrashMaker) {
	fs, crash := mk(t)
	f := mustCreate(t, fs, "/from")
	mustWrite(t, f, []byte("move-me"), 0)
	f.Sync()
	f.Close()
	if err := fs.Rename("/from", "/to"); err != nil {
		t.Fatal(err)
	}
	fs.Sync()
	rfs := crash()
	if _, err := rfs.Stat("/from"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("old name survived rename+crash: %v", err)
	}
	f2, err := rfs.Open("/to")
	if err != nil {
		t.Fatalf("new name lost: %v", err)
	}
	defer f2.Close()
	if got := mustRead(t, f2, 7, 0); string(got) != "move-me" {
		t.Fatalf("renamed data = %q", got)
	}
}

func testTruncateSurvives(t *testing.T, mk CrashMaker) {
	fs, crash := mk(t)
	f := mustCreate(t, fs, "/tr")
	mustWrite(t, f, seqBytes(20000), 0)
	f.Sync()
	if err := f.Truncate(5000); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()
	rfs := crash()
	fi, err := rfs.Stat("/tr")
	if err != nil || fi.Size != 5000 {
		t.Fatalf("truncate lost: %+v, %v", fi, err)
	}
}

func testRepeatedCrashes(t *testing.T, mk CrashMaker) {
	fs, crash := mk(t)
	f := mustCreate(t, fs, "/gen")
	mustWrite(t, f, []byte("gen-0"), 0)
	f.Sync()
	f.Close()
	cur := fs
	for gen := 1; gen <= 3; gen++ {
		cur = crash()
		f, err := cur.Open("/gen")
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		got := mustRead(t, f, 5, 0)
		f.Close()
		want := []byte{'g', 'e', 'n', '-', byte('0' + gen - 1)}
		if !bytes.Equal(got, want) {
			t.Fatalf("gen %d: read %q, want %q", gen, got, want)
		}
		f2, err := cur.Open("/gen")
		if err != nil {
			t.Fatal(err)
		}
		mustWrite(t, f2, []byte{byte('0' + gen)}, 4)
		if err := f2.Sync(); err != nil {
			t.Fatalf("gen %d sync: %v", gen, err)
		}
		f2.Close()
	}
}
