package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"muxfs/internal/vfs"
)

// RunConcurrency exercises a file system with parallel clients. It checks
// for data races (under -race), panics, and cross-file interference; it is
// deliberately light on timing assumptions so it works for every
// implementation, including the RPC proxy.
func RunConcurrency(t *testing.T, mk Maker) {
	t.Run("WritersOnDistinctFiles", func(t *testing.T) { testWritersDistinctFiles(t, mk(t)) })
	t.Run("WritersOnDisjointRegions", func(t *testing.T) { testWritersDisjointRegions(t, mk(t)) })
	t.Run("MixedMetadataStorm", func(t *testing.T) { testMixedMetadataStorm(t, mk(t)) })
	t.Run("ReadersDuringWrites", func(t *testing.T) { testReadersDuringWrites(t, mk(t)) })
}

func testWritersDistinctFiles(t *testing.T, fs vfs.FileSystem) {
	const workers = 8
	const perFile = 64 * 1024
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/w%d", w)
			f, err := fs.Create(path)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			payload := bytes.Repeat([]byte{byte(w + 1)}, perFile)
			if _, err := f.WriteAt(payload, 0); err != nil {
				errs <- fmt.Errorf("%s: %w", path, err)
				return
			}
			if err := f.Sync(); err != nil {
				errs <- fmt.Errorf("%s sync: %w", path, err)
				return
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// No cross-file bleed.
	for w := 0; w < workers; w++ {
		f, err := fs.Open(fmt.Sprintf("/w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, perFile)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(w + 1)}, perFile)) {
			t.Fatalf("file %d corrupted by concurrent writers", w)
		}
	}
}

func testWritersDisjointRegions(t *testing.T, fs vfs.FileSystem) {
	const workers = 8
	const region = 32 * 1024
	f, err := fs.Create("/shared")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := fs.Open("/shared")
			if err != nil {
				errs <- err
				return
			}
			defer h.Close()
			payload := bytes.Repeat([]byte{byte(w + 1)}, region)
			if _, err := h.WriteAt(payload, int64(w)*region); err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	h, err := fs.Open("/shared")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got := make([]byte, workers*region)
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < region; i++ {
			if got[w*region+i] != byte(w+1) {
				t.Fatalf("byte %d of region %d = %#x", i, w, got[w*region+i])
			}
		}
	}
}

func testMixedMetadataStorm(t *testing.T, fs vfs.FileSystem) {
	if err := fs.Mkdir("/storm"); err != nil {
		t.Fatal(err)
	}
	const workers = 6
	var wg sync.WaitGroup
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				path := fmt.Sprintf("/storm/f%d-%d", w, rng.Intn(8))
				switch rng.Intn(6) {
				case 0:
					if f, err := fs.Create(path); err == nil {
						f.WriteAt([]byte("x"), 0)
						f.Close()
					}
				case 1:
					fs.Remove(path)
				case 2:
					fs.Rename(path, path+"-r")
					fs.Rename(path+"-r", path)
				case 3:
					fs.Stat(path)
				case 4:
					fs.ReadDir("/storm")
				case 5:
					if f, err := fs.Open(path); err == nil {
						buf := make([]byte, 4)
						f.ReadAt(buf, 0)
						f.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(panics)
	for p := range panics {
		t.Fatalf("panic under metadata storm: %v", p)
	}
	// The FS must still be fully functional.
	f, err := fs.Create("/storm/after")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("alive"), 0); err != nil {
		t.Fatal(err)
	}
}

func testReadersDuringWrites(t *testing.T, fs vfs.FileSystem) {
	const size = 256 * 1024
	f, err := fs.Create("/rw")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xAA}, size), 0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	errs := make(chan error, 8)
	// Writers flip whole 4 KiB blocks between two valid patterns.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			h, err := fs.Open("/rw")
			if err != nil {
				errs <- err
				return
			}
			defer h.Close()
			patterns := [][]byte{bytes.Repeat([]byte{0xAA}, 4096), bytes.Repeat([]byte{0xBB}, 4096)}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := int64((i*2+w)%(size/4096)) * 4096
				if _, err := h.WriteAt(patterns[i%2], off); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers: every byte must be one of the two valid patterns.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			h, err := fs.Open("/rw")
			if err != nil {
				errs <- err
				return
			}
			defer h.Close()
			buf := make([]byte, 4096)
			for i := 0; i < 200; i++ {
				off := int64(i%(size/4096)) * 4096
				if _, err := h.ReadAt(buf, off); err != nil && !errors.Is(err, io.EOF) {
					errs <- err
					return
				}
				for j, b := range buf {
					if b != 0xAA && b != 0xBB {
						errs <- fmt.Errorf("torn byte %d at %d: %#x", j, off, b)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
