package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"muxfs/internal/vfs"
)

// RunCrashTorture drives a randomized workload with crashes injected
// between rounds, verifying after every recovery that the fsync contract
// holds: a file with no modifications since its last sync must recover
// byte-exact; files dirtied after their last sync may recover either
// version but must stay readable; never-synced files may vanish.
func RunCrashTorture(t *testing.T, mk CrashMaker, rounds int) {
	fs, crash := mk(t)
	rng := rand.New(rand.NewSource(0xC0FFEE))

	type modelFile struct {
		synced []byte // contents as of the last sync covering this file
		latest []byte // contents now
		dirty  bool   // modified since last sync
	}
	model := map[string]*modelFile{}
	oplog := map[string][]string{}
	logOp := func(path, format string, args ...any) {
		oplog[path] = append(oplog[path], fmt.Sprintf(format, args...))
	}

	paths := make([]string, 8)
	for i := range paths {
		paths[i] = fmt.Sprintf("/t%d", i)
	}

	markSynced := func(mf *modelFile) {
		mf.synced = append([]byte(nil), mf.latest...)
		mf.dirty = false
	}

	syncAll := func() {
		if err := fs.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		for _, mf := range model {
			markSynced(mf)
		}
	}

	applyOps := func() {
		for op := 0; op < 25; op++ {
			path := paths[rng.Intn(len(paths))]
			mf := model[path]
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // write
				f, err := fs.Create(path)
				if errors.Is(err, vfs.ErrExist) {
					f, err = fs.Open(path)
				}
				if err != nil {
					t.Fatalf("open %s: %v", path, err)
				}
				if mf == nil {
					// Unknown to the model (fresh, or resurrected by a
					// crash): adopt the file's actual contents first.
					mf = &modelFile{dirty: true}
					if fi, serr := f.Stat(); serr == nil && fi.Size > 0 {
						mf.latest = make([]byte, fi.Size)
						if _, rerr := f.ReadAt(mf.latest, 0); rerr != nil && !errors.Is(rerr, io.EOF) {
							t.Fatalf("adopt %s: %v", path, rerr)
						}
					}
					model[path] = mf
				}
				off := int64(rng.Intn(64 * 1024))
				data := make([]byte, rng.Intn(16*1024)+1)
				rng.Read(data)
				if _, err := f.WriteAt(data, off); err != nil {
					t.Fatalf("write %s: %v", path, err)
				}
				f.Close()
				for int64(len(mf.latest)) < off+int64(len(data)) {
					mf.latest = append(mf.latest, 0)
				}
				copy(mf.latest[off:], data)
				mf.dirty = true
				logOp(path, "write off=%d n=%d", off, len(data))
			case 5: // truncate
				if mf == nil {
					continue
				}
				size := int64(rng.Intn(64 * 1024))
				if err := fs.Truncate(path, size); err != nil {
					t.Fatalf("truncate %s: %v", path, err)
				}
				if size <= int64(len(mf.latest)) {
					mf.latest = mf.latest[:size]
				} else {
					mf.latest = append(mf.latest, make([]byte, size-int64(len(mf.latest)))...)
				}
				mf.dirty = true
				logOp(path, "truncate %d", size)
			case 6: // remove
				if mf == nil {
					continue
				}
				if err := fs.Remove(path); err != nil {
					t.Fatalf("remove %s: %v", path, err)
				}
				delete(model, path)
				logOp(path, "remove")
			case 7, 8: // per-file fsync
				if mf == nil {
					continue
				}
				f, err := fs.Open(path)
				if err != nil {
					t.Fatalf("open %s: %v", path, err)
				}
				if err := f.Sync(); err != nil {
					t.Fatalf("fsync %s: %v", path, err)
				}
				f.Close()
				markSynced(mf)
				logOp(path, "fsync")
			case 9:
				syncAll()
				logOp(path, "syncall")
			}
		}
	}

	for round := 0; round < rounds; round++ {
		applyOps()
		if rng.Intn(2) == 0 {
			syncAll()
		}

		fs = crash()

		// Reconcile the model with what recovery produced.
		for name, mf := range model {
			_, statErr := fs.Stat(name)
			if mf.synced == nil {
				// Never synced: existence is implementation-defined; adopt
				// reality (drop from the model either way — contents are
				// unspecified until the next write re-establishes them).
				if errors.Is(statErr, vfs.ErrNotExist) {
					delete(model, name)
					continue
				}
				delete(model, name) // exists with unspecified contents
				continue
			}
			if statErr != nil {
				t.Fatalf("round %d: synced file %s lost: %v", round, name, statErr)
			}
			if !mf.dirty {
				// Clean at crash time: byte-exact recovery required.
				f, err := fs.Open(name)
				if err != nil {
					t.Fatalf("round %d: open %s: %v", round, name, err)
				}
				fi, err := f.Stat()
				if err != nil {
					t.Fatalf("round %d: stat %s: %v", round, name, err)
				}
				if fi.Size != int64(len(mf.synced)) {
					t.Fatalf("round %d: %s size %d, want %d", round, name, fi.Size, len(mf.synced))
				}
				if len(mf.synced) > 0 {
					got := make([]byte, len(mf.synced))
					if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
						t.Fatalf("round %d: read %s: %v", round, name, err)
					}
					if !bytes.Equal(got, mf.synced) {
						i := 0
						for i < len(got) && got[i] == mf.synced[i] {
							i++
						}
						t.Fatalf("round %d: synced contents of %s corrupted at byte %d of %d (got %#x want %#x)\nops: %v",
							round, name, i, len(got), got[i], mf.synced[i], oplog[name])
					}
				}
				f.Close()
				mf.latest = append([]byte(nil), mf.synced...)
				continue
			}
			// Dirty at crash time: either version (or a prefix-consistent
			// mix at page granularity) may have survived. Adopt reality so
			// the model stays exact for the next round.
			f, err := fs.Open(name)
			if err != nil {
				t.Fatalf("round %d: dirty synced file %s unreadable: %v", round, name, err)
			}
			fi, err := f.Stat()
			if err != nil {
				t.Fatalf("round %d: stat %s: %v", round, name, err)
			}
			actual := make([]byte, fi.Size)
			if fi.Size > 0 {
				if _, err := f.ReadAt(actual, 0); err != nil && !errors.Is(err, io.EOF) {
					t.Fatalf("round %d: read %s: %v", round, name, err)
				}
			}
			f.Close()
			mf.latest = actual
			markSynced(mf)
			logOp(name, "adopt(size=%d)", len(actual))
		}
		// Unsynced removals may resurrect files recovery-side; they are
		// outside the model now and will be re-adopted on next touch.
	}
}
