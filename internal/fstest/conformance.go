// Package fstest provides a reusable VFS conformance suite. Every file
// system in the repository — the three native file systems, the Strata
// baseline, the RPC proxy, and Mux itself — must pass the same behavioral
// contract, which is precisely the paper's architectural bet: if the VFS
// interface is honored uniformly, a tiered file system can be composed from
// arbitrary file systems underneath.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"muxfs/internal/vfs"
)

// Maker builds a fresh, empty file system for one subtest.
type Maker func(t *testing.T) vfs.FileSystem

// RunConformance exercises the full VFS contract against file systems
// produced by mk.
func RunConformance(t *testing.T, mk Maker) {
	t.Run("CreateAndStat", func(t *testing.T) { testCreateAndStat(t, mk(t)) })
	t.Run("CreateExisting", func(t *testing.T) { testCreateExisting(t, mk(t)) })
	t.Run("CreateMissingParent", func(t *testing.T) { testCreateMissingParent(t, mk(t)) })
	t.Run("OpenMissing", func(t *testing.T) { testOpenMissing(t, mk(t)) })
	t.Run("WriteReadRoundTrip", func(t *testing.T) { testWriteRead(t, mk(t)) })
	t.Run("ReadAtEOF", func(t *testing.T) { testReadAtEOF(t, mk(t)) })
	t.Run("OverwriteMiddle", func(t *testing.T) { testOverwriteMiddle(t, mk(t)) })
	t.Run("SparseFile", func(t *testing.T) { testSparse(t, mk(t)) })
	t.Run("Extents", func(t *testing.T) { testExtents(t, mk(t)) })
	t.Run("PunchHole", func(t *testing.T) { testPunchHole(t, mk(t)) })
	t.Run("TruncateShrinkGrow", func(t *testing.T) { testTruncate(t, mk(t)) })
	t.Run("Append", func(t *testing.T) { testAppend(t, mk(t)) })
	t.Run("MkdirReadDir", func(t *testing.T) { testMkdirReadDir(t, mk(t)) })
	t.Run("Remove", func(t *testing.T) { testRemove(t, mk(t)) })
	t.Run("RemoveNonEmptyDir", func(t *testing.T) { testRemoveNonEmpty(t, mk(t)) })
	t.Run("Rename", func(t *testing.T) { testRename(t, mk(t)) })
	t.Run("SetAttr", func(t *testing.T) { testSetAttr(t, mk(t)) })
	t.Run("Statfs", func(t *testing.T) { testStatfs(t, mk(t)) })
	t.Run("Timestamps", func(t *testing.T) { testTimestamps(t, mk(t)) })
	t.Run("ClosedHandle", func(t *testing.T) { testClosedHandle(t, mk(t)) })
	t.Run("ManyFiles", func(t *testing.T) { testManyFiles(t, mk(t)) })
	t.Run("DeepPaths", func(t *testing.T) { testDeepPaths(t, mk(t)) })
	t.Run("MessyPathsNormalize", func(t *testing.T) { testMessyPathsNormalize(t, mk(t)) })
	t.Run("EmptyFileSync", func(t *testing.T) { testEmptyFileSync(t, mk(t)) })
	t.Run("HeavilyFragmentedFile", func(t *testing.T) { testHeavilyFragmentedFile(t, mk(t)) })
	t.Run("WriteAtNegativeOffset", func(t *testing.T) { testWriteAtNegativeOffset(t, mk(t)) })
	t.Run("RandomizedIO", func(t *testing.T) { testRandomizedIO(t, mk(t)) })
}

func mustCreate(t *testing.T, fs vfs.FileSystem, path string) vfs.File {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("Create(%q): %v", path, err)
	}
	return f
}

func mustWrite(t *testing.T, f vfs.File, data []byte, off int64) {
	t.Helper()
	n, err := f.WriteAt(data, off)
	if err != nil || n != len(data) {
		t.Fatalf("WriteAt(len=%d, off=%d) = %d, %v", len(data), off, n, err)
	}
}

func mustRead(t *testing.T, f vfs.File, n int, off int64) []byte {
	t.Helper()
	buf := make([]byte, n)
	got, err := f.ReadAt(buf, off)
	if err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("ReadAt(%d, %d): %v", n, off, err)
	}
	return buf[:got]
}

func testCreateAndStat(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/a")
	defer f.Close()
	fi, err := fs.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 0 || fi.IsDir() {
		t.Fatalf("fresh file info = %+v", fi)
	}
	if fi.Path != "/a" {
		t.Fatalf("path = %q", fi.Path)
	}
	hfi, err := f.Stat()
	if err != nil || hfi.Size != 0 {
		t.Fatalf("handle stat = %+v, %v", hfi, err)
	}
	if f.Path() != "/a" {
		t.Fatalf("handle path = %q", f.Path())
	}
}

func testCreateExisting(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/a")
	f.Close()
	if _, err := fs.Create("/a"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("Create existing err = %v", err)
	}
}

func testCreateMissingParent(t *testing.T, fs vfs.FileSystem) {
	if _, err := fs.Create("/no/such/dir/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func testOpenMissing(t *testing.T, fs vfs.FileSystem) {
	if _, err := fs.Open("/ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Open missing err = %v", err)
	}
	if _, err := fs.Stat("/ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Stat missing err = %v", err)
	}
}

func testWriteRead(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/data")
	defer f.Close()
	payload := seqBytes(100 * 1024)
	mustWrite(t, f, payload, 0)
	got := mustRead(t, f, len(payload), 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("round-trip mismatch")
	}
	// Reopen and read again.
	f2, err := fs.Open("/data")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got = mustRead(t, f2, len(payload), 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("reopened read mismatch")
	}
	fi, _ := fs.Stat("/data")
	if fi.Size != int64(len(payload)) {
		t.Fatalf("size = %d, want %d", fi.Size, len(payload))
	}
}

func testReadAtEOF(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/small")
	defer f.Close()
	mustWrite(t, f, []byte("0123456789"), 0)
	buf := make([]byte, 20)
	n, err := f.ReadAt(buf, 5)
	if n != 5 {
		t.Fatalf("short read n = %d", n)
	}
	if !errors.Is(err, io.EOF) {
		t.Fatalf("short read err = %v, want io.EOF", err)
	}
	n, err = f.ReadAt(buf, 100)
	if n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("read past EOF = %d, %v", n, err)
	}
}

func testOverwriteMiddle(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/ov")
	defer f.Close()
	mustWrite(t, f, bytes.Repeat([]byte{'a'}, 16384), 0)
	mustWrite(t, f, bytes.Repeat([]byte{'b'}, 5000), 3000)
	got := mustRead(t, f, 16384, 0)
	for i, c := range got {
		want := byte('a')
		if i >= 3000 && i < 8000 {
			want = 'b'
		}
		if c != want {
			t.Fatalf("byte %d = %c, want %c", i, c, want)
		}
	}
	if fi, _ := f.Stat(); fi.Size != 16384 {
		t.Fatalf("overwrite changed size: %d", fi.Size)
	}
}

func testSparse(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/sparse")
	defer f.Close()
	mustWrite(t, f, []byte("tail"), 1<<20) // 1 MiB hole then 4 bytes
	fi, _ := f.Stat()
	if fi.Size != 1<<20+4 {
		t.Fatalf("size = %d", fi.Size)
	}
	if fi.Blocks >= fi.Size {
		t.Fatalf("sparse file fully allocated: blocks=%d size=%d", fi.Blocks, fi.Size)
	}
	hole := mustRead(t, f, 4096, 1000)
	if !bytes.Equal(hole, make([]byte, 4096)) {
		t.Fatal("hole does not read as zeros")
	}
	tail := mustRead(t, f, 4, 1<<20)
	if string(tail) != "tail" {
		t.Fatalf("tail = %q", tail)
	}
}

func testExtents(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/ext")
	defer f.Close()
	mustWrite(t, f, make([]byte, 8192), 0)
	mustWrite(t, f, make([]byte, 4096), 1<<20)
	exts, err := f.Extents()
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) < 2 {
		t.Fatalf("extents = %+v, want >= 2 runs", exts)
	}
	var prevEnd int64 = -1
	var mapped int64
	for _, e := range exts {
		if e.Len <= 0 || e.Off < prevEnd {
			t.Fatalf("bad extent list: %+v", exts)
		}
		prevEnd = e.End()
		mapped += e.Len
	}
	if mapped < 8192+4096 {
		t.Fatalf("extents cover %d bytes", mapped)
	}
	if exts[0].Off != 0 {
		t.Fatalf("first extent at %d", exts[0].Off)
	}
	if last := exts[len(exts)-1]; last.Off > 1<<20 || last.End() < 1<<20+4096 {
		t.Fatalf("tail extent %+v does not cover the far write", last)
	}
}

func testPunchHole(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/punch")
	defer f.Close()
	mustWrite(t, f, bytes.Repeat([]byte{0xAA}, 32768), 0)
	before, _ := f.Stat()
	if err := f.PunchHole(4096, 8192); err != nil {
		t.Fatal(err)
	}
	after, _ := f.Stat()
	if after.Size != before.Size {
		t.Fatalf("punch changed size: %d -> %d", before.Size, after.Size)
	}
	if after.Blocks >= before.Blocks {
		t.Fatalf("punch did not free space: %d -> %d", before.Blocks, after.Blocks)
	}
	got := mustRead(t, f, 32768, 0)
	for i := 0; i < 32768; i++ {
		want := byte(0xAA)
		if i >= 4096 && i < 12288 {
			want = 0
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func testTruncate(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/tr")
	defer f.Close()
	mustWrite(t, f, seqBytes(10000), 0)
	if err := f.Truncate(4000); err != nil {
		t.Fatal(err)
	}
	fi, _ := f.Stat()
	if fi.Size != 4000 {
		t.Fatalf("size after shrink = %d", fi.Size)
	}
	// Grow back: the tail must read as zeros, not stale data.
	if err := f.Truncate(10000); err != nil {
		t.Fatal(err)
	}
	tail := mustRead(t, f, 6000, 4000)
	if !bytes.Equal(tail, make([]byte, 6000)) {
		t.Fatal("grown tail exposes stale data")
	}
	head := mustRead(t, f, 4000, 0)
	if !bytes.Equal(head, seqBytes(10000)[:4000]) {
		t.Fatal("shrink corrupted head")
	}
	// Truncate by path.
	if err := fs.Truncate("/tr", 123); err != nil {
		t.Fatal(err)
	}
	if fi, _ := fs.Stat("/tr"); fi.Size != 123 {
		t.Fatalf("path truncate size = %d", fi.Size)
	}
	if err := f.Truncate(-1); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("negative truncate err = %v", err)
	}
}

func testAppend(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/log")
	defer f.Close()
	var want bytes.Buffer
	for i := 0; i < 50; i++ {
		chunk := []byte(fmt.Sprintf("entry-%03d\n", i))
		fi, _ := f.Stat()
		mustWrite(t, f, chunk, fi.Size)
		want.Write(chunk)
	}
	got := mustRead(t, f, want.Len(), 0)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("append sequence mismatch")
	}
}

func testMkdirReadDir(t *testing.T, fs vfs.FileSystem) {
	if err := fs.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/dir/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/dir"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("duplicate mkdir err = %v", err)
	}
	if err := fs.Mkdir("/nope/sub"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("mkdir missing parent err = %v", err)
	}
	mustCreate(t, fs, "/dir/b").Close()
	mustCreate(t, fs, "/dir/a").Close()
	ents, err := fs.ReadDir("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "a" || ents[1].Name != "b" || ents[2].Name != "sub" {
		t.Fatalf("ReadDir = %+v", ents)
	}
	if ents[2].IsDir != true || ents[0].IsDir != false {
		t.Fatalf("IsDir flags wrong: %+v", ents)
	}
	if _, err := fs.ReadDir("/dir/a"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("ReadDir on file err = %v", err)
	}
	fi, err := fs.Stat("/dir")
	if err != nil || !fi.IsDir() {
		t.Fatalf("dir stat = %+v, %v", fi, err)
	}
}

func testRemove(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/gone")
	mustWrite(t, f, make([]byte, 8192), 0)
	f.Close()
	used := func() int64 { s, _ := fs.Statfs(); return s.Used }
	before := used()
	if err := fs.Remove("/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/gone"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open removed err = %v", err)
	}
	if err := fs.Remove("/gone"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("double remove err = %v", err)
	}
	if after := used(); after >= before {
		t.Fatalf("remove freed no space: %d -> %d", before, after)
	}
	// Empty dir removal works.
	fs.Mkdir("/d")
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
}

func testRemoveNonEmpty(t *testing.T, fs vfs.FileSystem) {
	fs.Mkdir("/d")
	mustCreate(t, fs, "/d/f").Close()
	if err := fs.Remove("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("remove non-empty err = %v", err)
	}
}

func testRename(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/old")
	mustWrite(t, f, []byte("payload"), 0)
	f.Close()
	fs.Mkdir("/dir")
	if err := fs.Rename("/old", "/dir/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/old"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("old name survives: %v", err)
	}
	f2, err := fs.Open("/dir/new")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := mustRead(t, f2, 7, 0); string(got) != "payload" {
		t.Fatalf("renamed contents = %q", got)
	}
	if err := fs.Rename("/ghost", "/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("rename missing err = %v", err)
	}
	mustCreate(t, fs, "/clash").Close()
	if err := fs.Rename("/dir/new", "/clash"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("rename onto existing err = %v", err)
	}
}

func testSetAttr(t *testing.T, fs vfs.FileSystem) {
	mustCreate(t, fs, "/attr").Close()
	mode := vfs.FileMode(0o600)
	size := int64(5000)
	mt := int64(42)
	mtd := durOf(mt)
	if err := fs.SetAttr("/attr", vfs.SetAttr{Mode: &mode, Size: &size, ModTime: &mtd}); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat("/attr")
	if fi.Mode.Perm() != 0o600 || fi.Size != 5000 || fi.ModTime != mtd {
		t.Fatalf("SetAttr not applied: %+v", fi)
	}
	if err := fs.SetAttr("/ghost", vfs.SetAttr{Mode: &mode}); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("SetAttr missing err = %v", err)
	}
}

func testStatfs(t *testing.T, fs vfs.FileSystem) {
	s0, err := fs.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if s0.Capacity <= 0 || s0.Available > s0.Capacity {
		t.Fatalf("statfs = %+v", s0)
	}
	f := mustCreate(t, fs, "/big")
	mustWrite(t, f, make([]byte, 1<<20), 0)
	f.Close()
	s1, _ := fs.Statfs()
	if s1.Used <= s0.Used {
		t.Fatalf("Used did not grow: %d -> %d", s0.Used, s1.Used)
	}
	if s1.Files != s0.Files+1 {
		t.Fatalf("Files = %d, want %d", s1.Files, s0.Files+1)
	}
	if s1.Available+s1.Used != s1.Capacity {
		t.Fatalf("accounting broken: %+v", s1)
	}
}

func testTimestamps(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/ts")
	defer f.Close()
	fi0, _ := f.Stat()
	mustWrite(t, f, []byte("x"), 0)
	fi1, _ := f.Stat()
	if fi1.ModTime < fi0.ModTime {
		t.Fatalf("mtime went backwards: %v -> %v", fi0.ModTime, fi1.ModTime)
	}
	if fi1.ModTime == 0 {
		t.Fatal("mtime never set")
	}
	buf := make([]byte, 1)
	f.ReadAt(buf, 0)
	fi2, _ := f.Stat()
	if fi2.ATime < fi1.ATime {
		t.Fatal("atime went backwards")
	}
}

func testClosedHandle(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/c")
	f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("write on closed err = %v", err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("read on closed err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("sync on closed err = %v", err)
	}
}

func testManyFiles(t *testing.T, fs vfs.FileSystem) {
	fs.Mkdir("/many")
	const n = 100
	for i := 0; i < n; i++ {
		f := mustCreate(t, fs, fmt.Sprintf("/many/f%03d", i))
		mustWrite(t, f, []byte(fmt.Sprintf("content-%d", i)), 0)
		f.Close()
	}
	ents, err := fs.ReadDir("/many")
	if err != nil || len(ents) != n {
		t.Fatalf("ReadDir: %d entries, %v", len(ents), err)
	}
	for i := 0; i < n; i += 17 {
		f, err := fs.Open(fmt.Sprintf("/many/f%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("content-%d", i)
		if got := mustRead(t, f, len(want), 0); string(got) != want {
			t.Fatalf("file %d = %q", i, got)
		}
		f.Close()
	}
}

// testRandomizedIO cross-checks a random write/read/truncate/punch sequence
// against an in-memory reference model.
func testRandomizedIO(t *testing.T, fs vfs.FileSystem) {
	const space = 1 << 18 // 256 KiB model
	f := mustCreate(t, fs, "/rand")
	defer f.Close()
	model := make([]byte, 0, space)
	rng := rand.New(rand.NewSource(1234))

	grow := func(n int64) {
		for int64(len(model)) < n {
			model = append(model, 0)
		}
	}
	for op := 0; op < 300; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // write
			off := int64(rng.Intn(space / 2))
			n := rng.Intn(space/8) + 1
			data := make([]byte, n)
			rng.Read(data)
			mustWrite(t, f, data, off)
			grow(off + int64(n))
			copy(model[off:], data)
		case 6, 7: // read & verify
			off := int64(rng.Intn(space))
			n := rng.Intn(space / 4)
			if n == 0 {
				continue
			}
			buf := make([]byte, n)
			got, err := f.ReadAt(buf, off)
			if err != nil && !errors.Is(err, io.EOF) {
				t.Fatalf("op %d: read: %v", op, err)
			}
			wantN := int64(len(model)) - off
			if wantN < 0 {
				wantN = 0
			}
			if wantN > int64(n) {
				wantN = int64(n)
			}
			if int64(got) != wantN {
				t.Fatalf("op %d: read %d bytes, want %d", op, got, wantN)
			}
			if !bytes.Equal(buf[:got], model[off:off+int64(got)]) {
				t.Fatalf("op %d: read mismatch at %d", op, off)
			}
		case 8: // truncate
			n := int64(rng.Intn(space))
			if err := f.Truncate(n); err != nil {
				t.Fatalf("op %d: truncate: %v", op, err)
			}
			if n <= int64(len(model)) {
				model = model[:n]
			} else {
				grow(n)
			}
		case 9: // punch
			if len(model) == 0 {
				continue
			}
			off := int64(rng.Intn(len(model)))
			n := int64(rng.Intn(space / 8))
			if err := f.PunchHole(off, n); err != nil {
				t.Fatalf("op %d: punch: %v", op, err)
			}
			end := off + n
			if end > int64(len(model)) {
				end = int64(len(model))
			}
			for i := off; i < end; i++ {
				model[i] = 0
			}
		}
		if fi, _ := f.Stat(); fi.Size != int64(len(model)) {
			t.Fatalf("op %d: size %d, model %d", op, fi.Size, len(model))
		}
	}
	// Final full verification.
	if len(model) > 0 {
		got := mustRead(t, f, len(model), 0)
		if !bytes.Equal(got, model) {
			t.Fatal("final state mismatch")
		}
	}
}

func seqBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}

// Additional contract behaviors appended to the suite.

func testDeepPaths(t *testing.T, fs vfs.FileSystem) {
	path := ""
	for i := 0; i < 12; i++ {
		path += fmt.Sprintf("/d%d", i)
		if err := fs.Mkdir(path); err != nil {
			t.Fatalf("mkdir %s: %v", path, err)
		}
	}
	f := mustCreate(t, fs, path+"/leaf")
	defer f.Close()
	mustWrite(t, f, []byte("deep"), 0)
	got := mustRead(t, f, 4, 0)
	if string(got) != "deep" {
		t.Fatalf("deep leaf = %q", got)
	}
	ents, err := fs.ReadDir(path)
	if err != nil || len(ents) != 1 {
		t.Fatalf("deep readdir: %v, %v", ents, err)
	}
}

func testMessyPathsNormalize(t *testing.T, fs vfs.FileSystem) {
	fs.Mkdir("/dir")
	f := mustCreate(t, fs, "/dir/../dir//file")
	mustWrite(t, f, []byte("norm"), 0)
	f.Close()
	g, err := fs.Open("//dir/./file")
	if err != nil {
		t.Fatalf("normalized open: %v", err)
	}
	defer g.Close()
	if got := mustRead(t, g, 4, 0); string(got) != "norm" {
		t.Fatalf("normalized read = %q", got)
	}
	if fi, err := fs.Stat("/dir/sub/../file"); err != nil || fi.Path != "/dir/file" {
		t.Fatalf("normalized stat = %+v, %v", fi, err)
	}
}

func testEmptyFileSync(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/empty")
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync of empty file: %v", err)
	}
	exts, err := f.Extents()
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 0 {
		t.Fatalf("empty file has extents: %+v", exts)
	}
	fi, _ := f.Stat()
	if fi.Size != 0 || fi.Blocks != 0 {
		t.Fatalf("empty file info: %+v", fi)
	}
}

func testHeavilyFragmentedFile(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/frag")
	defer f.Close()
	// Write every other 4 KiB block, then fill the gaps in reverse order.
	const blocks = 64
	blk := func(i int, c byte) []byte { return bytes.Repeat([]byte{c}, 4096) }
	for i := 0; i < blocks; i += 2 {
		mustWrite(t, f, blk(i, byte(i+1)), int64(i)*4096)
	}
	for i := blocks - 1; i >= 1; i -= 2 {
		mustWrite(t, f, blk(i, byte(i+1)), int64(i)*4096)
	}
	got := mustRead(t, f, blocks*4096, 0)
	for i := 0; i < blocks; i++ {
		if got[i*4096] != byte(i+1) || got[i*4096+4095] != byte(i+1) {
			t.Fatalf("block %d corrupted in fragmented file", i)
		}
	}
	exts, err := f.Extents()
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 || exts[0].Len != blocks*4096 {
		t.Fatalf("fragmented file extents = %+v, want one fully merged run", exts)
	}
}

func testWriteAtNegativeOffset(t *testing.T, fs vfs.FileSystem) {
	f := mustCreate(t, fs, "/neg")
	defer f.Close()
	if _, err := f.WriteAt([]byte("x"), -5); err == nil {
		t.Fatal("negative-offset write accepted")
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, -5); err == nil {
		t.Fatal("negative-offset read accepted")
	}
}
