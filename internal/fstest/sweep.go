package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"muxfs/internal/device"
	"muxfs/internal/vfs"
)

// SweepTarget is one freshly built file system stack under deterministic
// crash-point control. CP must be attached (device.SetCrashPoint) to every
// device of the stack so the sweep index orders durability steps globally.
// Remount simulates power loss and recovery: it crashes every device,
// recovers, and returns the remounted file system; it must be callable
// repeatedly. Check, when non-nil, runs the stack's deep consistency check
// (fsck) and returns a non-nil error for any inconsistency.
type SweepTarget struct {
	FS      vfs.FileSystem
	CP      *device.CrashPoint
	Remount func() (vfs.FileSystem, error)
	Check   func(fs vfs.FileSystem) error
	// PostRecover, when non-nil, runs after every remount — AFTER the
	// sweep has asserted that recovery replay itself was read-only. It is
	// the slot for idempotent post-recovery reclamation (orphan-extent
	// scrub) that performs journaled writes and therefore cannot be part
	// of read-only replay: a crash mid-scrub just leaves the remainder
	// for the next remount's scrub.
	PostRecover func(fs vfs.FileSystem) error
}

// SweepMaker builds a fresh SweepTarget for one sweep iteration. Every call
// must produce an identically shaped stack (same profiles, same seeds): the
// sweep replays the same workload once per crash index and relies on the
// device-operation sequence being reproducible.
type SweepMaker func(t *testing.T) *SweepTarget

// SweepScenario is one swept operation: Setup builds a synced baseline
// (returning path -> exact expected contents for files the op never
// touches), Op performs the operation under injection, and Check, when
// non-nil, asserts the op's legal post-crash outcomes on the remounted
// file system (e.g. "renamed or not, never both").
type SweepScenario struct {
	Name  string
	Setup func(t *testing.T, fs vfs.FileSystem) map[string][]byte
	Op    func(fs vfs.FileSystem) error
	Check func(t *testing.T, fs vfs.FileSystem, crashPoint int64, completed bool)
}

// RunCrashSweep is the deterministic crash-point sweep: for each scenario
// it first counts the durability steps the operation performs, then replays
// the operation once per step index i with the crash point armed at i,
// power-fails the stack, remounts, and checks the full consistency
// contract:
//
//   - baseline synced state is byte-identical after recovery;
//   - the whole namespace walks cleanly (every entry stats and reads);
//   - recovery itself performs zero durability steps (read-only recovery is
//     what makes "crash mid-replay, replay again" idempotent by
//     construction);
//   - the stack's deep Check (fsck) reports no inconsistency;
//   - a second immediate crash+remount reproduces the identical state
//     (replay idempotence);
//   - scenario-specific legal outcomes hold (atomic rename, remove, ...).
//
// Extra scenarios (stack-specific ops like MigrateRange) are appended to
// the generic namespace suite.
func RunCrashSweep(t *testing.T, mk SweepMaker, extra ...SweepScenario) {
	scens := append(GenericSweepScenarios(), extra...)
	for _, sc := range scens {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) { sweepScenario(t, mk, sc) })
	}
}

func sweepScenario(t *testing.T, mk SweepMaker, sc SweepScenario) {
	// Count run: how many durability steps does the op (plus its final
	// sync) perform when nothing crashes?
	tgt := mk(t)
	sc.Setup(t, tgt.FS)
	if err := tgt.FS.Sync(); err != nil {
		t.Fatalf("count run: baseline sync: %v", err)
	}
	tgt.CP.Reset()
	if err := sc.Op(tgt.FS); err != nil {
		t.Fatalf("count run: op: %v", err)
	}
	if err := tgt.FS.Sync(); err != nil {
		t.Fatalf("count run: final sync: %v", err)
	}
	n := tgt.CP.Steps()
	if n == 0 {
		t.Fatalf("count run: op performed no durability steps; nothing to sweep")
	}

	for i := int64(0); i <= n; i++ {
		tgt := mk(t)
		model := sc.Setup(t, tgt.FS)
		if err := tgt.FS.Sync(); err != nil {
			t.Fatalf("i=%d: baseline sync: %v", i, err)
		}
		tgt.CP.Arm(i)
		_ = sc.Op(tgt.FS) // errors expected once the point trips
		_ = tgt.FS.Sync() // ditto
		if i < n && !tgt.CP.Tripped() {
			t.Fatalf("i=%d/%d: crash point never tripped — the workload is "+
				"not replaying deterministically", i, n)
		}
		tgt.CP.Disarm()
		before := tgt.CP.Steps()

		rfs, err := tgt.Remount()
		if err != nil {
			t.Fatalf("i=%d/%d: recovery failed: %v", i, n, err)
		}
		if s := tgt.CP.Steps(); s != before {
			t.Fatalf("i=%d/%d: recovery performed %d durability steps; "+
				"recovery must be read-only", i, n, s-before)
		}
		if tgt.PostRecover != nil {
			if err := tgt.PostRecover(rfs); err != nil {
				t.Fatalf("i=%d/%d: post-recovery scrub: %v", i, n, err)
			}
		}
		checkContract(t, tgt, rfs, model, sc, i, i == n)
	}
}

// checkContract runs the full post-remount consistency contract at one
// crash point.
func checkContract(t *testing.T, tgt *SweepTarget, fs vfs.FileSystem,
	model map[string][]byte, sc SweepScenario, i int64, completed bool) {
	t.Helper()
	ctx := fmt.Sprintf("i=%d", i)

	for p, want := range model {
		got, err := ReadFileAt(fs, p)
		if err != nil {
			t.Fatalf("%s: baseline %s lost: %v", ctx, p, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: baseline %s corrupted (%d bytes, want %d)",
				ctx, p, len(got), len(want))
		}
	}

	snap1, err := SnapshotFS(fs)
	if err != nil {
		t.Fatalf("%s: namespace walk after recovery: %v", ctx, err)
	}
	if st, err := fs.Statfs(); err != nil {
		t.Fatalf("%s: Statfs: %v", ctx, err)
	} else if st.Used < 0 || (st.Capacity > 0 && st.Used > st.Capacity) {
		t.Fatalf("%s: Statfs accounting insane: %+v", ctx, st)
	}

	if tgt.Check != nil {
		if err := tgt.Check(fs); err != nil {
			t.Fatalf("%s: consistency check: %v", ctx, err)
		}
	}
	if sc.Check != nil {
		sc.Check(t, fs, i, completed)
	}

	// Second power loss with no intervening operations: replaying the same
	// journal again must reproduce the identical state.
	rfs2, err := tgt.Remount()
	if err != nil {
		t.Fatalf("%s: second recovery failed: %v", ctx, err)
	}
	if tgt.PostRecover != nil {
		if err := tgt.PostRecover(rfs2); err != nil {
			t.Fatalf("%s: post-recovery scrub after second crash: %v", ctx, err)
		}
	}
	snap2, err := SnapshotFS(rfs2)
	if err != nil {
		t.Fatalf("%s: namespace walk after second recovery: %v", ctx, err)
	}
	if diff := DiffSnapshots(snap1, snap2); diff != "" {
		t.Fatalf("%s: replay not idempotent across a second crash: %s", ctx, diff)
	}
	if tgt.Check != nil {
		if err := tgt.Check(rfs2); err != nil {
			t.Fatalf("%s: consistency check after second crash: %v", ctx, err)
		}
	}
}

// SnapEntry is one namespace entry in a recursive snapshot.
type SnapEntry struct {
	Dir  bool
	Size int64
	Data string
}

// SnapshotFS walks the whole namespace and captures every entry with its
// full contents. Any walk/stat/read error is a consistency violation.
func SnapshotFS(fs vfs.FileSystem) (map[string]SnapEntry, error) {
	out := make(map[string]SnapEntry)
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, err := fs.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("ReadDir(%s): %w", dir, err)
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				out[p] = SnapEntry{Dir: true}
				if err := walk(p); err != nil {
					return err
				}
				continue
			}
			data, err := ReadFileAt(fs, p)
			if err != nil {
				return fmt.Errorf("read %s: %w", p, err)
			}
			out[p] = SnapEntry{Size: int64(len(data)), Data: string(data)}
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return nil, err
	}
	return out, nil
}

// DiffSnapshots describes the first difference between two snapshots, or
// returns "" when identical.
func DiffSnapshots(a, b map[string]SnapEntry) string {
	for p, ea := range a {
		eb, ok := b[p]
		if !ok {
			return fmt.Sprintf("%s vanished", p)
		}
		if ea.Dir != eb.Dir || ea.Size != eb.Size || ea.Data != eb.Data {
			return fmt.Sprintf("%s changed (size %d -> %d)", p, ea.Size, eb.Size)
		}
	}
	for p := range b {
		if _, ok := a[p]; !ok {
			return fmt.Sprintf("%s appeared", p)
		}
	}
	return ""
}

// ReadFileAt stats path and reads its full contents.
func ReadFileAt(fs vfs.FileSystem, path string) ([]byte, error) {
	fi, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if fi.Size == 0 {
		return nil, nil
	}
	buf := make([]byte, fi.Size)
	n, err := f.ReadAt(buf, 0)
	if err != nil && !(errors.Is(err, io.EOF) && int64(n) == fi.Size) {
		return nil, err
	}
	if int64(n) != fi.Size {
		return nil, fmt.Errorf("short read: %d of %d bytes", n, fi.Size)
	}
	return buf, nil
}

const sweepBlock = 4096

// checkZeroOrExpected asserts the crash-legal data state of an op-target
// file: every aligned block is either still all-zero (its flush never
// completed before the crash) or exactly the expected bytes. Torn garbage
// inside a block is a bug.
func checkZeroOrExpected(t *testing.T, fs vfs.FileSystem, path string,
	want []byte, ctx string) {
	t.Helper()
	got, err := ReadFileAt(fs, path)
	if err != nil {
		t.Fatalf("%s: read %s: %v", ctx, path, err)
	}
	if len(got) > len(want) {
		t.Fatalf("%s: %s longer than ever written: %d > %d", ctx, path, len(got), len(want))
	}
	for off := 0; off < len(got); off += sweepBlock {
		end := off + sweepBlock
		if end > len(got) {
			end = len(got)
		}
		blk := got[off:end]
		if bytes.Equal(blk, want[off:end]) {
			continue
		}
		allZero := true
		for _, c := range blk {
			if c != 0 {
				allZero = false
				break
			}
		}
		if !allZero {
			t.Fatalf("%s: %s block at %d is torn (neither zero nor expected)",
				ctx, path, off)
		}
	}
}

// GenericSweepScenarios returns the namespace-op sweep suite every file
// system must pass: create, overwrite, rename, remove, truncate, punch,
// and a multi-op batch flushed by one sync (the group-commit case).
func GenericSweepScenarios() []SweepScenario {
	baseline := func(t *testing.T, fs vfs.FileSystem) map[string][]byte {
		t.Helper()
		if err := fs.Mkdir("/base"); err != nil {
			t.Fatalf("setup mkdir: %v", err)
		}
		model := make(map[string][]byte)
		for _, nm := range []string{"/base/keep0", "/base/keep1"} {
			payload := seqBytes(16 << 10)
			f := mustCreate(t, fs, nm)
			mustWrite(t, f, payload, 0)
			if err := f.Sync(); err != nil {
				t.Fatalf("setup sync %s: %v", nm, err)
			}
			f.Close()
			model[nm] = payload
		}
		return model
	}
	// victim creates a synced op-target file outside the model.
	victim := func(t *testing.T, fs vfs.FileSystem, nm string, n int) []byte {
		t.Helper()
		payload := seqBytes(n)
		f := mustCreate(t, fs, nm)
		mustWrite(t, f, payload, 0)
		if err := f.Sync(); err != nil {
			t.Fatalf("setup sync %s: %v", nm, err)
		}
		f.Close()
		return payload
	}

	var scens []SweepScenario

	newPayload := seqBytes(8 << 10)
	scens = append(scens, SweepScenario{
		Name:  "Create",
		Setup: baseline,
		Op: func(fs vfs.FileSystem) error {
			f, err := fs.Create("/base/new")
			if err != nil {
				return err
			}
			defer f.Close()
			if _, err := f.WriteAt(newPayload, 0); err != nil {
				return err
			}
			return f.Sync()
		},
		Check: func(t *testing.T, fs vfs.FileSystem, i int64, completed bool) {
			t.Helper()
			ctx := fmt.Sprintf("i=%d", i)
			_, err := fs.Stat("/base/new")
			if errors.Is(err, vfs.ErrNotExist) {
				if completed {
					t.Fatalf("%s: fully synced create vanished", ctx)
				}
				return
			}
			if err != nil {
				t.Fatalf("%s: stat /base/new: %v", ctx, err)
			}
			checkZeroOrExpected(t, fs, "/base/new", newPayload, ctx)
			if completed {
				got, err := ReadFileAt(fs, "/base/new")
				if err != nil || !bytes.Equal(got, newPayload) {
					t.Fatalf("%s: fully synced create not byte-identical: %v", ctx, err)
				}
			}
		},
	})

	overWant := bytes.Repeat([]byte{0xC3}, 8<<10)
	scens = append(scens, SweepScenario{
		Name: "OverwriteSynced",
		Setup: func(t *testing.T, fs vfs.FileSystem) map[string][]byte {
			model := baseline(t, fs)
			victim(t, fs, "/base/vic", 16<<10)
			return model
		},
		Op: func(fs vfs.FileSystem) error {
			f, err := fs.Open("/base/vic")
			if err != nil {
				return err
			}
			defer f.Close()
			if _, err := f.WriteAt(overWant, 4096); err != nil {
				return err
			}
			return f.Sync()
		},
		Check: func(t *testing.T, fs vfs.FileSystem, i int64, completed bool) {
			t.Helper()
			ctx := fmt.Sprintf("i=%d", i)
			old := seqBytes(16 << 10)
			got, err := ReadFileAt(fs, "/base/vic")
			if err != nil {
				t.Fatalf("%s: synced file lost by overwrite crash: %v", ctx, err)
			}
			if int64(len(got)) != 16<<10 {
				t.Fatalf("%s: size changed by in-place overwrite: %d", ctx, len(got))
			}
			// Outside the overwritten range: original bytes, always.
			if !bytes.Equal(got[:4096], old[:4096]) || !bytes.Equal(got[4096+len(overWant):], old[4096+len(overWant):]) {
				t.Fatalf("%s: bytes outside overwritten range corrupted", ctx)
			}
			// Inside: each block old or new, never torn.
			for off := 4096; off < 4096+len(overWant); off += sweepBlock {
				blk := got[off : off+sweepBlock]
				if !bytes.Equal(blk, old[off:off+sweepBlock]) && !bytes.Equal(blk, overWant[off-4096:off-4096+sweepBlock]) {
					t.Fatalf("%s: overwritten block at %d torn", ctx, off)
				}
			}
			if completed && !bytes.Equal(got[4096:4096+len(overWant)], overWant) {
				t.Fatalf("%s: fully synced overwrite not applied", ctx)
			}
		},
	})

	scens = append(scens, SweepScenario{
		Name: "Rename",
		Setup: func(t *testing.T, fs vfs.FileSystem) map[string][]byte {
			model := baseline(t, fs)
			victim(t, fs, "/base/vic", 12<<10)
			return model
		},
		Op: func(fs vfs.FileSystem) error {
			if err := fs.Rename("/base/vic", "/base/renamed"); err != nil {
				return err
			}
			return fs.Sync()
		},
		Check: func(t *testing.T, fs vfs.FileSystem, i int64, completed bool) {
			t.Helper()
			ctx := fmt.Sprintf("i=%d", i)
			want := seqBytes(12 << 10)
			_, errOld := fs.Stat("/base/vic")
			_, errNew := fs.Stat("/base/renamed")
			oldThere := errOld == nil
			newThere := errNew == nil
			if oldThere == newThere {
				t.Fatalf("%s: rename not atomic: old=%v new=%v", ctx, errOld, errNew)
			}
			p := "/base/vic"
			if newThere {
				p = "/base/renamed"
			}
			got, err := ReadFileAt(fs, p)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("%s: renamed file contents lost under %s: %v", ctx, p, err)
			}
			if completed && !newThere {
				t.Fatalf("%s: fully synced rename rolled back", ctx)
			}
		},
	})

	scens = append(scens, SweepScenario{
		Name: "Remove",
		Setup: func(t *testing.T, fs vfs.FileSystem) map[string][]byte {
			model := baseline(t, fs)
			victim(t, fs, "/base/vic", 12<<10)
			return model
		},
		Op: func(fs vfs.FileSystem) error {
			if err := fs.Remove("/base/vic"); err != nil {
				return err
			}
			return fs.Sync()
		},
		Check: func(t *testing.T, fs vfs.FileSystem, i int64, completed bool) {
			t.Helper()
			ctx := fmt.Sprintf("i=%d", i)
			_, err := fs.Stat("/base/vic")
			if errors.Is(err, vfs.ErrNotExist) {
				return
			}
			if err != nil {
				t.Fatalf("%s: stat after remove crash: %v", ctx, err)
			}
			if completed {
				t.Fatalf("%s: fully synced remove resurrected the file", ctx)
			}
			got, rerr := ReadFileAt(fs, "/base/vic")
			if rerr != nil || !bytes.Equal(got, seqBytes(12<<10)) {
				t.Fatalf("%s: un-removed file corrupted: %v", ctx, rerr)
			}
		},
	})

	scens = append(scens, SweepScenario{
		Name: "Truncate",
		Setup: func(t *testing.T, fs vfs.FileSystem) map[string][]byte {
			model := baseline(t, fs)
			victim(t, fs, "/base/vic", 16<<10)
			return model
		},
		Op: func(fs vfs.FileSystem) error {
			if err := fs.Truncate("/base/vic", 5000); err != nil {
				return err
			}
			return fs.Sync()
		},
		Check: func(t *testing.T, fs vfs.FileSystem, i int64, completed bool) {
			t.Helper()
			ctx := fmt.Sprintf("i=%d", i)
			want := seqBytes(16 << 10)
			got, err := ReadFileAt(fs, "/base/vic")
			if err != nil {
				t.Fatalf("%s: file lost by truncate crash: %v", ctx, err)
			}
			switch int64(len(got)) {
			case 5000:
				if !bytes.Equal(got, want[:5000]) {
					t.Fatalf("%s: truncated prefix corrupted", ctx)
				}
			case 16 << 10:
				if completed {
					t.Fatalf("%s: fully synced truncate rolled back", ctx)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: un-truncated contents corrupted", ctx)
				}
			default:
				t.Fatalf("%s: size after truncate crash = %d, want 5000 or 16384", ctx, len(got))
			}
		},
	})

	scens = append(scens, SweepScenario{
		Name: "PunchHole",
		Setup: func(t *testing.T, fs vfs.FileSystem) map[string][]byte {
			model := baseline(t, fs)
			victim(t, fs, "/base/vic", 16<<10)
			return model
		},
		Op: func(fs vfs.FileSystem) error {
			f, err := fs.Open("/base/vic")
			if err != nil {
				return err
			}
			defer f.Close()
			if err := f.PunchHole(4096, 8192); err != nil {
				return err
			}
			return f.Sync()
		},
		Check: func(t *testing.T, fs vfs.FileSystem, i int64, completed bool) {
			t.Helper()
			ctx := fmt.Sprintf("i=%d", i)
			want := seqBytes(16 << 10)
			got, err := ReadFileAt(fs, "/base/vic")
			if err != nil || int64(len(got)) != 16<<10 {
				t.Fatalf("%s: file damaged by punch crash: %v (%d bytes)", ctx, err, len(got))
			}
			if !bytes.Equal(got[:4096], want[:4096]) || !bytes.Equal(got[4096+8192:], want[4096+8192:]) {
				t.Fatalf("%s: bytes outside punched range corrupted", ctx)
			}
			zero := make([]byte, sweepBlock)
			for off := 4096; off < 4096+8192; off += sweepBlock {
				blk := got[off : off+sweepBlock]
				if !bytes.Equal(blk, want[off:off+sweepBlock]) && !bytes.Equal(blk, zero) {
					t.Fatalf("%s: punched block at %d torn", ctx, off)
				}
			}
			if completed && !bytes.Equal(got[4096:4096+8192], make([]byte, 8192)) {
				t.Fatalf("%s: fully synced punch not applied", ctx)
			}
		},
	})

	batchPayload := func(k int) []byte {
		b := seqBytes(512)
		for i := range b {
			b[i] ^= byte(k)
		}
		return b
	}
	scens = append(scens, SweepScenario{
		Name: "BatchCommit",
		Setup: func(t *testing.T, fs vfs.FileSystem) map[string][]byte {
			model := baseline(t, fs)
			victim(t, fs, "/base/vicR", 4<<10)
			victim(t, fs, "/base/vicM", 4<<10)
			return model
		},
		Op: func(fs vfs.FileSystem) error {
			// A burst of namespace ops followed by a single sync: the
			// group-commit / journal-batch flush is the swept write.
			for k := 0; k < 8; k++ {
				f, err := fs.Create(fmt.Sprintf("/base/b%d", k))
				if err != nil {
					return err
				}
				if _, err := f.WriteAt(batchPayload(k), 0); err != nil {
					f.Close()
					return err
				}
				f.Close()
			}
			if err := fs.Remove("/base/vicR"); err != nil {
				return err
			}
			if err := fs.Rename("/base/vicM", "/base/vicM2"); err != nil {
				return err
			}
			return fs.Sync()
		},
		Check: func(t *testing.T, fs vfs.FileSystem, i int64, completed bool) {
			t.Helper()
			ctx := fmt.Sprintf("i=%d", i)
			for k := 0; k < 8; k++ {
				p := fmt.Sprintf("/base/b%d", k)
				if _, err := fs.Stat(p); errors.Is(err, vfs.ErrNotExist) {
					if completed {
						t.Fatalf("%s: synced batch file %s vanished", ctx, p)
					}
					continue
				}
				checkZeroOrExpected(t, fs, p, batchPayload(k), ctx)
			}
			_, errOld := fs.Stat("/base/vicM")
			_, errNew := fs.Stat("/base/vicM2")
			if (errOld == nil) == (errNew == nil) {
				t.Fatalf("%s: batched rename not atomic: old=%v new=%v", ctx, errOld, errNew)
			}
			if completed {
				if _, err := fs.Stat("/base/vicR"); !errors.Is(err, vfs.ErrNotExist) {
					t.Fatalf("%s: synced batched remove resurrected: %v", ctx, err)
				}
			}
		},
	})

	return scens
}

// RunCrashStorm is the -race crash/remount storm: concurrent workers hammer
// the namespace, the stack power-fails and recovers between rounds, and
// every file synced before a crash must survive it byte-identical. Under
// the race detector this exercises recovery (including parallel journal
// replay and parallel fsck) against itself and against foreground I/O
// state.
func RunCrashStorm(t *testing.T, mk SweepMaker) {
	tgt := mk(t)
	fs := tgt.FS
	const workers, cycles, perWorker = 4, 5, 12

	type synced struct {
		path string
		data []byte
	}
	for cy := 0; cy < cycles; cy++ {
		results := make([][]synced, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perWorker; j++ {
					p := fmt.Sprintf("/c%d_w%d_%d", cy, w, j)
					f, err := fs.Create(p)
					if err != nil {
						t.Errorf("storm create %s: %v", p, err)
						return
					}
					data := seqBytes(4096)
					for i := range data {
						data[i] ^= byte(w*31 + j)
					}
					if _, err := f.WriteAt(data, 0); err != nil {
						t.Errorf("storm write %s: %v", p, err)
						f.Close()
						return
					}
					if j%3 == 0 {
						// A third of the files are dropped again before the
						// crash — exercising remove records in the replay.
						f.Close()
						if err := fs.Remove(p); err != nil {
							t.Errorf("storm remove %s: %v", p, err)
						}
						continue
					}
					if err := f.Sync(); err != nil {
						t.Errorf("storm sync %s: %v", p, err)
					}
					f.Close()
					results[w] = append(results[w], synced{p, data})
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		rfs, err := tgt.Remount()
		if err != nil {
			t.Fatalf("cycle %d: recovery: %v", cy, err)
		}
		if tgt.PostRecover != nil {
			if err := tgt.PostRecover(rfs); err != nil {
				t.Fatalf("cycle %d: post-recovery scrub: %v", cy, err)
			}
		}
		fs = rfs
		for w := 0; w < workers; w++ {
			for _, s := range results[w] {
				got, err := ReadFileAt(fs, s.path)
				if err != nil {
					t.Fatalf("cycle %d: synced %s lost: %v", cy, s.path, err)
				}
				if !bytes.Equal(got, s.data) {
					t.Fatalf("cycle %d: synced %s corrupted", cy, s.path)
				}
			}
		}
		if tgt.Check != nil {
			if err := tgt.Check(fs); err != nil {
				t.Fatalf("cycle %d: consistency check: %v", cy, err)
			}
		}
	}
}
