package autotune_test

import (
	"strings"
	"testing"
	"time"

	"muxfs/internal/policy"
	"muxfs/internal/policy/autotune"
	"muxfs/internal/telemetry"
)

// fakePol is a one-knob Tunable whose "workload response" the test
// controls exactly: hit ratio peaks when x sits at a target value.
type fakePol struct {
	x              float64
	min, max, step float64
}

func (f *fakePol) Name() string                                        { return "fake" }
func (f *fakePol) PlaceWrite(policy.WriteCtx, []policy.TierInfo) int   { return 0 }
func (f *fakePol) PlanMigrations([]policy.TierInfo, []policy.FileStat, time.Duration) []policy.Move {
	return nil
}
func (f *fakePol) Params() []policy.Param {
	return []policy.Param{{Name: "x", Kind: policy.KindScalar, Value: f.x, Min: f.min, Max: f.max, Step: f.step}}
}
func (f *fakePol) SetParam(name string, v float64) error {
	if name != "x" {
		return policy.ErrUnknownParam
	}
	if v < f.min {
		v = f.min
	}
	if v > f.max {
		v = f.max
	}
	f.x = v
	return nil
}

// hitFor maps knob position to fast-read fraction: a clean unimodal
// response with its peak at target.
func hitFor(x, target float64) float64 {
	d := x - target
	if d < 0 {
		d = -d
	}
	h := 0.95 - 0.08*d
	if h < 0.05 {
		h = 0.05
	}
	return h
}

// env simulates rounds: each interval serves 1000 reads whose fast
// fraction reflects the knob value in force DURING the interval (the
// one-round probe lag the controller is built around).
type env struct {
	pol    *fakePol
	target float64
	now    time.Duration
	total  int64
	fast   int64
	lat    *telemetry.Histogram
}

func (e *env) sample() autotune.Sample {
	e.now += time.Second
	hits := int64(1000 * hitFor(e.pol.x, e.target))
	e.total += 1000
	e.fast += hits
	// Misses cost 2 ms of virtual latency, hits 10 µs.
	for i := int64(0); i < hits; i++ {
		e.lat.Record(int64(10 * time.Microsecond))
	}
	for i := hits; i < 1000; i++ {
		e.lat.Record(int64(2 * time.Millisecond))
	}
	return autotune.Sample{
		Now: e.now, FastReads: e.fast, TotalReads: e.total,
		ReadLat: e.lat.Snapshot(),
	}
}

func TestNewRejectsNonTunable(t *testing.T) {
	if _, err := autotune.New(policy.Pinned{Tier: 0}, autotune.Options{}); err == nil {
		t.Fatal("New accepted a policy with no params")
	}
}

func TestClimbConvergesAndLogIsMonotone(t *testing.T) {
	pol := &fakePol{x: 2, min: 0, max: 10, step: 1}
	tn, err := autotune.New(pol, autotune.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{pol: pol, target: 6, lat: telemetry.NewHistogram()}

	for i := 0; i < 40 && !tn.Converged(); i++ {
		tn.Step(e.sample())
	}
	if !tn.Converged() {
		t.Fatalf("tuner did not converge; status %+v", tn.Status())
	}
	// The climb must land within one step of the optimum.
	if pol.x < 5 || pol.x > 7 {
		t.Fatalf("converged knob x = %v, want near 6", pol.x)
	}

	// Audit trail: accepted scores are strictly increasing — the
	// monotone-improvement property E14 gates on.
	var accepted []float64
	var sawProbe, sawRevert bool
	for _, d := range tn.Log() {
		switch d.Action {
		case "accept":
			accepted = append(accepted, d.Score)
		case "probe":
			sawProbe = true
		case "revert":
			sawRevert = true
		}
	}
	if len(accepted) < 2 {
		t.Fatalf("expected several accepted probes, log: %+v", tn.Log())
	}
	for i := 1; i < len(accepted); i++ {
		if accepted[i] <= accepted[i-1] {
			t.Fatalf("accepted scores not monotone: %v", accepted)
		}
	}
	if !sawProbe || !sawRevert {
		t.Fatal("log missing probe/revert actions")
	}

	// Converged means held: more rounds must not move the knob (no
	// oscillation).
	settled := pol.x
	for i := 0; i < 5; i++ {
		d := tn.Step(e.sample())
		if d.Action != "hold" {
			t.Fatalf("post-convergence action = %q", d.Action)
		}
	}
	if pol.x != settled {
		t.Fatalf("knob moved after convergence: %v -> %v", settled, pol.x)
	}

	st := tn.Status()
	if st.Policy != "fake" || !st.Converged || st.Accepted == 0 || st.Reverted == 0 {
		t.Fatalf("status %+v", st)
	}
}

func TestWakesOnWorkloadShift(t *testing.T) {
	pol := &fakePol{x: 5, min: 0, max: 10, step: 1}
	tn, err := autotune.New(pol, autotune.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{pol: pol, target: 5, lat: telemetry.NewHistogram()}
	for i := 0; i < 30 && !tn.Converged(); i++ {
		tn.Step(e.sample())
	}
	if !tn.Converged() {
		t.Fatalf("no convergence at optimum start; status %+v", tn.Status())
	}

	// Shift the workload: the old knob is now badly wrong, score tanks.
	e.target = 1
	var woke bool
	for i := 0; i < 40; i++ {
		d := tn.Step(e.sample())
		if d.Action == "wake" {
			woke = true
			break
		}
	}
	if !woke {
		t.Fatalf("tuner never woke after workload shift; log %+v", tn.Log())
	}
	// And it re-climbs toward the new optimum. The climb is not a straight
	// walk: best decays only halfway per wake (noise protection), so the
	// tuner cycles converge→wake→probe a few times before the acceptance
	// bar drops to the new regime's reachable scores. Run a fixed budget
	// rather than stopping at the first (transient) convergence.
	for i := 0; i < 100; i++ {
		tn.Step(e.sample())
	}
	if pol.x > 2.5 {
		t.Fatalf("post-shift knob x = %v, want near 1", pol.x)
	}
}

func TestIdleIntervalsAreSkipped(t *testing.T) {
	pol := &fakePol{x: 2, min: 0, max: 10, step: 1}
	tn, err := autotune.New(pol, autotune.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup, then two idle samples (no ops at all).
	tn.Step(autotune.Sample{Now: time.Second})
	for i := 0; i < 2; i++ {
		d := tn.Step(autotune.Sample{Now: time.Duration(i+2) * time.Second})
		if d.Action != "idle" {
			t.Fatalf("empty interval action = %q", d.Action)
		}
	}
	if pol.x != 2 {
		t.Fatalf("idle rounds moved the knob: %v", pol.x)
	}
	if st := tn.Status(); st.Idle != 2 {
		t.Fatalf("idle count = %d", st.Idle)
	}
}

func TestDecideEverySpansRounds(t *testing.T) {
	pol := &fakePol{x: 2, min: 0, max: 10, step: 1}
	tn, err := autotune.New(pol, autotune.Options{DecideEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{pol: pol, target: 6, lat: telemetry.NewHistogram()}

	// Warmup, then rounds: only every 3rd Step may decide; the rest gather.
	tn.Step(e.sample())
	var decided, gathered int
	for i := 0; i < 30; i++ {
		switch d := tn.Step(e.sample()); d.Action {
		case "gather":
			gathered++
			if d.Param != "" || d.Score != 0 {
				t.Fatalf("gather round carried a verdict: %+v", d)
			}
		default:
			decided++
		}
	}
	if decided != 10 || gathered != 20 {
		t.Fatalf("decided=%d gathered=%d, want 10/30 decisions", decided, gathered)
	}
	// Gather rounds are not logged — the audit trail holds decisions only.
	for _, d := range tn.Log() {
		if d.Action == "gather" {
			t.Fatalf("gather round leaked into the log: %+v", d)
		}
	}
	// The climb still works on the longer intervals.
	if pol.x <= 2 {
		t.Fatalf("knob never climbed: x = %v", pol.x)
	}
}

func TestFreezePinsKnobsAndRevertsProbe(t *testing.T) {
	pol := &fakePol{x: 2, min: 0, max: 10, step: 1}
	tn, err := autotune.New(pol, autotune.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{pol: pol, target: 6, lat: telemetry.NewHistogram()}

	// Run until a probe is in flight (knob displaced from its baseline).
	var before float64
	for i := 0; i < 20; i++ {
		d := tn.Step(e.sample())
		if d.Action == "probe" {
			before = d.From
			break
		}
	}
	tn.Freeze()
	if pol.x != before {
		t.Fatalf("freeze left the probe applied: x = %v, want %v", pol.x, before)
	}
	if st := tn.Status(); !st.Frozen {
		t.Fatal("status not frozen")
	}
	// Frozen steps hold and never move the knob.
	for i := 0; i < 5; i++ {
		if d := tn.Step(e.sample()); d.Action != "hold" {
			t.Fatalf("frozen step action = %q", d.Action)
		}
	}
	if pol.x != before {
		t.Fatalf("frozen steps moved the knob: x = %v", pol.x)
	}

	// Unfreeze resumes: first step is a fresh warmup (counters drifted all
	// through the frozen span), then probing continues.
	tn.Unfreeze()
	if d := tn.Step(e.sample()); d.Action != "warmup" {
		t.Fatalf("first post-unfreeze action = %q, want warmup", d.Action)
	}
	var probed bool
	for i := 0; i < 10 && !probed; i++ {
		probed = tn.Step(e.sample()).Action == "probe"
	}
	if !probed {
		t.Fatal("tuner never probed after unfreeze")
	}
}

func TestLogRingIsBounded(t *testing.T) {
	pol := &fakePol{x: 2, min: 0, max: 10, step: 1}
	tn, err := autotune.New(pol, autotune.Options{LogSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{pol: pol, target: 6, lat: telemetry.NewHistogram()}
	for i := 0; i < 50; i++ {
		tn.Step(e.sample())
	}
	log := tn.Log()
	if len(log) != 8 {
		t.Fatalf("ring length = %d, want 8", len(log))
	}
	// Oldest-first ordering: rounds strictly increase.
	for i := 1; i < len(log); i++ {
		if log[i].Round <= log[i-1].Round {
			t.Fatalf("ring out of order: %+v", log)
		}
	}
	if log[len(log)-1].Round != 50 {
		t.Fatalf("last logged round = %d, want 50", log[len(log)-1].Round)
	}
}

func TestRealLRUIsTunable(t *testing.T) {
	// Smoke the controller against a real built-in: it must probe without
	// erroring and respect the policy's own clamps.
	pol := policy.DefaultLRU()
	tn, err := autotune.New(pol, autotune.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := telemetry.NewHistogram()
	var total, fast int64
	for i := 0; i < 20; i++ {
		total += 500
		fast += 400
		h.Record(int64(50 * time.Microsecond))
		tn.Step(autotune.Sample{
			Now: time.Duration(i+1) * time.Second,
			FastReads: fast, TotalReads: total, ReadLat: h.Snapshot(),
		})
	}
	for _, p := range pol.Params() {
		if p.Value < p.Min-1e-9 || p.Value > p.Max+1e-9 {
			t.Fatalf("tuned param %s = %v escaped [%v, %v]", p.Name, p.Value, p.Min, p.Max)
		}
	}
	if st := tn.Status(); !strings.Contains(st.Policy, "lru") {
		t.Fatalf("status policy = %q", st.Policy)
	}
}
