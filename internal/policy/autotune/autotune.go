// Package autotune closes the loop the paper leaves open in §4
// ("Configuring Mux"): policies expose typed knobs (policy.Tunable), the
// telemetry subsystem measures the consequences, and this feedback
// controller walks the knobs toward a better operating point while the
// system serves traffic.
//
// The controller is a deliberately boring coordinate hill-climber with
// hysteresis — in the spirit of the automated tiered-storage tuners
// surveyed in PAPERS.md, and sized to be auditable rather than clever:
//
//   - Each policy round, the Policy Runner feeds it a Sample of cumulative
//     telemetry counters; the tuner diffs against the previous round, so
//     every decision is made on interval-delta signals (fast-tier read
//     fraction, SCM cache hit ratio, p99 virtual read latency, migration
//     churn bytes), never lifetime averages that drown change.
//   - It probes ONE knob per round by one Param.Step, waits a round for
//     the effect to land, and keeps the change only if the weighted
//     objective improved by at least the hysteresis margin; otherwise it
//     reverts and rotates to the next (knob, direction) pair. Accepted
//     scores are therefore monotone by construction, and a knob that
//     oscillates the objective is rejected on both directions and left
//     alone.
//   - Safety is the policy's job, not trust in the controller: SetParam
//     clamps every value into the Param's hard range (policy/params.go),
//     so the tuner can never wedge migration no matter how wrong its
//     objective weights are. When a full rotation of probes is rejected
//     the tuner declares convergence and holds — it only wakes back up if
//     the score later degrades past twice the hysteresis margin (workload
//     shift).
//
// Every action lands in a bounded decision log (Log), rendered by `muxsh
// autotune log` and summarized in the mux_autotune_* metric families.
package autotune

import (
	"fmt"
	"sync"
	"time"

	"muxfs/internal/policy"
	"muxfs/internal/telemetry"
)

// Sample carries the cumulative telemetry counters one policy round ends
// with. The tuner keeps the previous sample and scores the interval
// between them; callers never need to compute deltas.
type Sample struct {
	// Now is the virtual clock at sampling time.
	Now time.Duration

	// FastReads / TotalReads count downward device reads served by the
	// fastest tier vs all tiers (cumulative). Their interval ratio is the
	// placement-quality signal: hot data on the fast tier keeps it high.
	FastReads  int64
	TotalReads int64

	// CacheHits / CacheMisses are the SCM cache counters (cumulative,
	// both zero when no cache is attached).
	CacheHits   int64
	CacheMisses int64

	// MovedBytes counts migration bytes (cumulative) — the churn cost of
	// whatever the current knobs make the planner do.
	MovedBytes int64

	// ReadLat is the cumulative virtual-time read-latency histogram
	// (per-tenant attribution merged when tenants are registered; the
	// zero snapshot when not). Interval p99 feeds the objective.
	ReadLat telemetry.HistSnapshot

	// FastUsed / FastCap report the fastest tier's occupancy (gauge, not
	// diffed) — logged for the audit trail.
	FastUsed int64
	FastCap  int64
}

// Options configures the controller. Zero values take the defaults.
type Options struct {
	// Objective weights: score = HitWeight·fastReadFrac
	// + CacheWeight·cacheHitRatio − LatWeight·p99Millis
	// − ChurnWeight·(movedBytes/256MiB).
	HitWeight   float64 // default 1.0
	CacheWeight float64 // default 0.25
	LatWeight   float64 // default 0.15 (per millisecond of p99)
	ChurnWeight float64 // default 0.25 (per 256 MiB moved per round)

	// Hysteresis is the minimum relative score improvement that accepts a
	// probe (default 0.02 = 2%). Larger values damp oscillation harder.
	Hysteresis float64

	// MinIntervalOps skips tuning on intervals with fewer scored ops
	// (reads + cache lookups) than this — idle rounds carry no signal
	// (default 16).
	MinIntervalOps int64

	// DecideEvery makes the controller act only on every Nth Step call,
	// letting telemetry accrue across the skipped rounds so each scored
	// interval spans N policy rounds (default 1). Policies whose planner
	// works in bursts — e.g. an LRU drain that only fires every few
	// rounds, once refill crosses the watermark — impose a sawtooth on
	// per-round signals that a per-round verdict mistakes for the probe's
	// effect; spanning the burst period averages it out.
	DecideEvery int

	// LogSize bounds the decision log ring (default 256).
	LogSize int
}

func (o Options) withDefaults() Options {
	if o.HitWeight == 0 {
		o.HitWeight = 1.0
	}
	if o.CacheWeight == 0 {
		o.CacheWeight = 0.25
	}
	if o.LatWeight == 0 {
		o.LatWeight = 0.15
	}
	if o.ChurnWeight == 0 {
		o.ChurnWeight = 0.25
	}
	if o.Hysteresis <= 0 {
		o.Hysteresis = 0.02
	}
	if o.MinIntervalOps <= 0 {
		o.MinIntervalOps = 16
	}
	if o.DecideEvery <= 0 {
		o.DecideEvery = 1
	}
	if o.LogSize <= 0 {
		o.LogSize = 256
	}
	return o
}

// Decision is one audited controller action.
type Decision struct {
	Round  int64         `json:"round"`
	Now    time.Duration `json:"vnow_ns"`
	Action string        `json:"action"` // warmup | idle | probe | accept | revert | hold | wake | freeze | unfreeze
	Param  string        `json:"param,omitempty"`
	From   float64       `json:"from,omitempty"`
	To     float64       `json:"to,omitempty"`

	Score      float64       `json:"score"`
	HitRatio   float64       `json:"fast_read_frac"`
	CacheRatio float64       `json:"cache_hit_ratio"`
	P99        time.Duration `json:"p99_ns"`
	ChurnBytes int64         `json:"churn_bytes"`
	FastUsed   int64         `json:"fast_used"`
	Note       string        `json:"note,omitempty"`
}

// Status is the controller's summary for muxsh and /metrics.
type Status struct {
	Policy    string         `json:"policy"`
	Rounds    int64          `json:"rounds"`
	Accepted  int64          `json:"accepted"`
	Reverted  int64          `json:"reverted"`
	Holds     int64          `json:"holds"`
	Idle      int64          `json:"idle"`
	Converged bool           `json:"converged"`
	Frozen    bool           `json:"frozen"`
	BestScore float64        `json:"best_score"`
	LastScore float64        `json:"last_score"`
	Params    []policy.Param `json:"params"`
	Last      Decision       `json:"last_decision"`
}

// probe is the in-flight knob change awaiting its verdict.
type probe struct {
	name     string
	old, new float64
}

// Tuner is the feedback controller. One Tuner drives one Tunable policy;
// Step is called by the Policy Runner after each round. Safe for
// concurrent use (Step serializes internally; Log/Status may be called
// from other goroutines).
type Tuner struct {
	mu   sync.Mutex
	pol  policy.Tunable
	name string
	opts Options

	// Coordinate-descent cursor: which param, which direction.
	names []string
	idx   int
	dir   float64

	pending     *probe
	best        float64
	haveBest    bool
	misses      int // consecutive rejected probes
	converged   bool
	frozen      bool
	sinceDecide int // Step calls since the last decision (DecideEvery)

	rounds, accepted, reverted, holds, idle int64
	lastScore                               float64
	last                                    Decision

	prev     Sample
	havePrev bool

	log      []Decision
	logStart int
	logLen   int
}

// New builds a Tuner for pol, which must implement policy.Tunable and
// expose at least one param.
func New(pol policy.Policy, opts Options) (*Tuner, error) {
	t, ok := pol.(policy.Tunable)
	if !ok {
		return nil, fmt.Errorf("autotune: policy %q exposes no tunable params", pol.Name())
	}
	params := t.Params()
	if len(params) == 0 {
		return nil, fmt.Errorf("autotune: policy %q exposes no tunable params", pol.Name())
	}
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.Name
	}
	return &Tuner{
		pol:   t,
		name:  pol.Name(),
		opts:  opts.withDefaults(),
		names: names,
		dir:   1,
	}, nil
}

// margin is the absolute score improvement a probe must clear.
func (t *Tuner) margin() float64 {
	base := t.best
	if base < 0 {
		base = -base
	}
	if base < 0.05 {
		base = 0.05
	}
	return t.opts.Hysteresis * base
}

// Step scores the interval since the previous call and advances the
// climb: verdict on the pending probe, then (unless converged or idle)
// the next probe. Returns the decision it logged.
func (t *Tuner) Step(s Sample) Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rounds++

	if t.frozen {
		t.holds++
		return Decision{Round: t.rounds, Now: s.Now, Action: "hold", Note: "frozen"}
	}

	if !t.havePrev {
		t.prev, t.havePrev = s, true
		return t.record(Decision{Round: t.rounds, Now: s.Now, Action: "warmup", Note: "first sample; interval deltas start next round"})
	}

	// DecideEvery > 1: let the interval keep accruing (prev untouched) and
	// act only on the Nth round. Not logged — nothing was decided.
	t.sinceDecide++
	if t.sinceDecide < t.opts.DecideEvery {
		return Decision{Round: t.rounds, Now: s.Now, Action: "gather"}
	}
	t.sinceDecide = 0

	dFast := s.FastReads - t.prev.FastReads
	dTotal := s.TotalReads - t.prev.TotalReads
	dHits := s.CacheHits - t.prev.CacheHits
	dMiss := s.CacheMisses - t.prev.CacheMisses
	dMoved := s.MovedBytes - t.prev.MovedBytes
	var ih telemetry.HistSnapshot
	if s.ReadLat.Counts != nil { // zero snapshot = no latency series wired
		ih = s.ReadLat.Delta(t.prev.ReadLat)
	}
	t.prev = s

	if dTotal+dHits+dMiss < t.opts.MinIntervalOps {
		t.idle++
		// A pending probe stays pending: an idle interval says nothing
		// about it either way.
		return t.record(Decision{Round: t.rounds, Now: s.Now, Action: "idle",
			Note: fmt.Sprintf("%d scored ops < %d; skipping", dTotal+dHits+dMiss, t.opts.MinIntervalOps)})
	}

	d := Decision{Round: t.rounds, Now: s.Now, ChurnBytes: dMoved, FastUsed: s.FastUsed}
	if dTotal > 0 {
		d.HitRatio = float64(dFast) / float64(dTotal)
	}
	if dHits+dMiss > 0 {
		d.CacheRatio = float64(dHits) / float64(dHits+dMiss)
	}
	d.P99 = time.Duration(ih.Quantile(0.99))
	d.Score = t.opts.HitWeight*d.HitRatio +
		t.opts.CacheWeight*d.CacheRatio -
		t.opts.LatWeight*float64(d.P99)/float64(time.Millisecond) -
		t.opts.ChurnWeight*float64(dMoved)/float64(256<<20)
	t.lastScore = d.Score

	// Verdict on the pending probe.
	if p := t.pending; p != nil {
		t.pending = nil
		if d.Score >= t.best+t.margin() {
			t.best = d.Score
			t.misses = 0
			t.accepted++
			d.Action, d.Param, d.From, d.To = "accept", p.name, p.old, p.new
			d.Note = "kept; continuing same direction"
			return t.record(d)
		}
		// Revert and rotate to the next (param, direction) pair.
		_ = t.pol.SetParam(p.name, p.old)
		t.reverted++
		t.misses++
		if t.dir > 0 {
			t.dir = -1
		} else {
			t.dir = 1
			t.idx = (t.idx + 1) % len(t.names)
		}
		if t.misses >= 2*len(t.names) {
			t.converged = true
		}
		d.Action, d.Param, d.From, d.To = "revert", p.name, p.new, p.old
		d.Note = fmt.Sprintf("score %.4f below best %.4f + margin", d.Score, t.best)
		return t.record(d)
	}

	if !t.haveBest {
		t.best, t.haveBest = d.Score, true
		d.Action = "baseline"
		d.Note = "objective baseline established"
		// Fall through to issue the first probe next round keeps the log
		// simpler: one action per round.
		return t.record(d)
	}

	if t.converged {
		if d.Score < t.best-2*t.margin() {
			// Workload may have shifted under the settled knobs: resume
			// probing. best decays only halfway toward the observed score —
			// a genuine regime change walks it down geometrically across
			// repeated wakes, while a single noisy dip cannot drag the
			// acceptance bar low enough to ratify a downhill move.
			t.converged = false
			t.misses = 0
			t.best = (t.best + d.Score) / 2
			d.Action = "wake"
			d.Note = "score degraded past 2× margin; best decayed halfway, resuming probes"
			return t.record(d)
		}
		t.holds++
		d.Action = "hold"
		d.Note = "converged"
		return t.record(d)
	}

	// Issue the next probe: the first (param, direction) whose step
	// actually changes the value (a knob pinned at its clamp rotates on).
	for tries := 0; tries < 2*len(t.names); tries++ {
		pr := t.paramByName(t.names[t.idx])
		if pr == nil {
			t.idx = (t.idx + 1) % len(t.names)
			continue
		}
		next := pr.Value + t.dir*pr.Step
		if next < pr.Min {
			next = pr.Min
		}
		if next > pr.Max {
			next = pr.Max
		}
		if next == pr.Value {
			if t.dir > 0 {
				t.dir = -1
			} else {
				t.dir = 1
				t.idx = (t.idx + 1) % len(t.names)
			}
			continue
		}
		if err := t.pol.SetParam(pr.Name, next); err != nil {
			t.idx = (t.idx + 1) % len(t.names)
			continue
		}
		t.pending = &probe{name: pr.Name, old: pr.Value, new: next}
		d.Action, d.Param, d.From, d.To = "probe", pr.Name, pr.Value, next
		return t.record(d)
	}
	// Every knob is pinned at a clamp in both directions: nothing to do.
	t.converged = true
	t.holds++
	d.Action = "hold"
	d.Note = "all params at clamps"
	return t.record(d)
}

// paramByName re-enumerates and finds one param (its Value may have moved
// under quota retables).
func (t *Tuner) paramByName(name string) *policy.Param {
	for _, p := range t.pol.Params() {
		if p.Name == name {
			return &p
		}
	}
	return nil
}

// record appends to the ring and returns d.
func (t *Tuner) record(d Decision) Decision {
	t.last = d
	if len(t.log) < t.opts.LogSize {
		t.log = append(t.log, d)
		t.logLen = len(t.log)
		return d
	}
	t.log[t.logStart] = d
	t.logStart = (t.logStart + 1) % t.opts.LogSize
	return d
}

// Log returns the decision ring, oldest first.
func (t *Tuner) Log() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Decision, 0, t.logLen)
	for i := 0; i < t.logLen; i++ {
		out = append(out, t.log[(t.logStart+i)%len(t.log)])
	}
	return out
}

// Status summarizes the controller.
func (t *Tuner) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Status{
		Policy:    t.name,
		Rounds:    t.rounds,
		Accepted:  t.accepted,
		Reverted:  t.reverted,
		Holds:     t.holds,
		Idle:      t.idle,
		Converged: t.converged,
		Frozen:    t.frozen,
		BestScore: t.best,
		LastScore: t.lastScore,
		Params:    t.pol.Params(),
		Last:      t.last,
	}
}

// Freeze reverts any in-flight probe and pins the knobs: subsequent Steps
// hold without sampling or probing until Unfreeze. Operators use it to
// carry a known-good configuration through a measurement or maintenance
// window without giving up the tuner's state (`muxsh autotune freeze`).
func (t *Tuner) Freeze() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return
	}
	if p := t.pending; p != nil {
		t.pending = nil
		_ = t.pol.SetParam(p.name, p.old)
	}
	t.frozen = true
	t.record(Decision{Round: t.rounds, Now: t.prev.Now, Action: "freeze", Note: "knobs pinned; probing suspended"})
}

// Unfreeze resumes the climb. The next Step takes a fresh warmup sample:
// counters drifted for the whole frozen span, and a delta across it would
// be scored as one giant interval.
func (t *Tuner) Unfreeze() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.frozen {
		return
	}
	t.frozen = false
	t.havePrev = false
	t.sinceDecide = 0
	t.record(Decision{Round: t.rounds, Now: t.prev.Now, Action: "unfreeze", Note: "probing resumed"})
}

// Converged reports whether the climb has settled.
func (t *Tuner) Converged() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.converged
}
