package policy

import (
	"sort"
	"strings"
	"time"
)

// Quota caps how many bytes files under a path prefix may occupy on one
// tier — the §4 "Configuring Mux" direction: sharing a Mux among
// applications needs capacity isolation so one workload cannot squeeze
// others off the fast tiers.
type Quota struct {
	// Prefix selects files whose path starts with it ("/" matches all).
	Prefix string
	// Tier is the tier the cap applies to.
	Tier int
	// Bytes is the cap. Excess demotes to the next slower tier.
	Bytes int64
}

// QuotaPolicy wraps a base policy with per-prefix tier quotas. Placement
// delegates to the base policy; quota violations are corrected lazily by
// the Policy Runner (PlanMigrations), demoting the coldest offending files
// first.
type QuotaPolicy struct {
	Base   Policy
	Quotas []Quota
}

// Name identifies the composite policy.
func (p *QuotaPolicy) Name() string { return p.Base.Name() + "+quota" }

// PlaceWrite delegates to the base policy; over-quota placements are pulled
// back by the next planning round.
func (p *QuotaPolicy) PlaceWrite(ctx WriteCtx, tiers []TierInfo) int {
	return p.Base.PlaceWrite(ctx, tiers)
}

// PlanMigrations first emits quota-enforcement demotions, then the base
// policy's own plan.
func (p *QuotaPolicy) PlanMigrations(tiers []TierInfo, files []FileStat, now time.Duration) []Move {
	var moves []Move

	// next maps a tier to the next slower one (tiers arrive fastest-first).
	next := map[int]int{}
	for i := 0; i+1 < len(tiers); i++ {
		next[tiers[i].ID] = tiers[i+1].ID
	}

	for _, q := range p.Quotas {
		dst, ok := next[q.Tier]
		if !ok {
			continue // no slower tier to demote to
		}
		var matching []FileStat
		var used int64
		for _, f := range files {
			if !strings.HasPrefix(f.Path, q.Prefix) {
				continue
			}
			if b := f.TierBytes[q.Tier]; b > 0 {
				matching = append(matching, f)
				used += b
			}
		}
		if used <= q.Bytes {
			continue
		}
		// Demote coldest first until the prefix fits its budget.
		sort.Slice(matching, func(i, j int) bool {
			return matching[i].LastAccess < matching[j].LastAccess
		})
		over := used - q.Bytes
		for _, f := range matching {
			if over <= 0 {
				break
			}
			moves = append(moves, Move{Path: f.Path, SrcTier: q.Tier, DstTier: dst, Off: 0, N: -1})
			over -= f.TierBytes[q.Tier]
		}
	}

	return append(moves, p.Base.PlanMigrations(tiers, files, now)...)
}
