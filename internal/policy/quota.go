package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Quota caps how many bytes files under a path prefix may occupy on one
// tier — the §4 "Configuring Mux" direction: sharing a Mux among
// applications needs capacity isolation so one workload cannot squeeze
// others off the fast tiers.
type Quota struct {
	// Prefix selects files whose path starts with it ("/" matches all).
	Prefix string
	// Tier is the tier the cap applies to.
	Tier int
	// Bytes is the cap. Excess demotes to the next slower tier.
	Bytes int64
}

// QuotaPolicy wraps a base policy with per-prefix tier quotas. Placement
// delegates to the base policy; quota violations are corrected lazily by
// the Policy Runner (PlanMigrations), demoting the coldest offending files
// first. Quota caps are live-tunable: SetParam swaps a copy-on-write quota
// table, so an autotuner can resize a tenant's fast-tier budget while the
// Policy Runner is planning.
type QuotaPolicy struct {
	Base   Policy
	Quotas []Quota

	// quotasP, when set (SetParam), overrides Quotas — copy-on-write, so
	// PlanMigrations reads a consistent table without locks.
	quotasP atomic.Pointer[[]Quota]
}

// quotas returns the live quota table.
func (p *QuotaPolicy) quotas() []Quota {
	if q := p.quotasP.Load(); q != nil {
		return *q
	}
	return p.Quotas
}

// Name identifies the composite policy, quota config included, e.g.
// "lru+quota[/tenants/a:t0:64MiB]" — so muxsh and the migration log show
// which caps are actually in force, not just that some quota exists.
func (p *QuotaPolicy) Name() string {
	qs := p.quotas()
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = fmt.Sprintf("%s:t%d:%s", q.Prefix, q.Tier, fmtBytes(q.Bytes))
	}
	return p.Base.Name() + "+quota[" + strings.Join(parts, ",") + "]"
}

// fmtBytes renders a byte count compactly (power-of-two units).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return strconv.FormatInt(n>>30, 10) + "GiB"
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.FormatInt(n>>20, 10) + "MiB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.FormatInt(n>>10, 10) + "KiB"
	default:
		return strconv.FormatInt(n, 10) + "B"
	}
}

// quotaParamName renders the SetParam name of one quota's byte cap.
func quotaParamName(q Quota) string {
	return fmt.Sprintf("quota_bytes:%s:t%d", q.Prefix, q.Tier)
}

// Quota byte caps may be tuned within [1/8×, 8×] of the configured value
// (floor 1 MiB): wide enough for a controller to matter, bounded so it can
// never zero a tenant's budget and demote its entire working set.
func quotaClamp(configured int64) (min, max float64) {
	min = float64(configured) / 8
	if min < float64(1<<20) {
		min = float64(1 << 20)
	}
	max = float64(configured) * 8
	if max < min {
		max = min
	}
	return min, max
}

// Params enumerates the base policy's knobs (when it is Tunable) plus one
// byte-cap knob per quota (Tunable).
func (p *QuotaPolicy) Params() []Param {
	var out []Param
	if t, ok := p.Base.(Tunable); ok {
		out = append(out, t.Params()...)
	}
	for i, q := range p.quotas() {
		min, max := quotaClamp(p.configuredBytes(i))
		out = append(out, Param{
			Name: quotaParamName(q), Kind: KindBytes,
			Value: float64(q.Bytes), Min: min, Max: max,
			Step: float64(q.Bytes) / 4,
		})
	}
	return out
}

// configuredBytes returns quota i's originally configured cap (the clamp
// anchor), falling back to the live value for quotas that exist only in
// the override table.
func (p *QuotaPolicy) configuredBytes(i int) int64 {
	if i < len(p.Quotas) {
		return p.Quotas[i].Bytes
	}
	return p.quotas()[i].Bytes
}

// SetParam resizes one quota cap (clamped) or forwards to the base policy
// (Tunable). Copy-on-write: concurrent PlanMigrations sees either the old
// or the new table, never a torn one.
func (p *QuotaPolicy) SetParam(name string, v float64) error {
	cur := p.quotas()
	for i, q := range cur {
		if quotaParamName(q) != name {
			continue
		}
		min, max := quotaClamp(p.configuredBytes(i))
		next := append([]Quota(nil), cur...)
		next[i].Bytes = int64(clampTo(v, min, max))
		p.quotasP.Store(&next)
		return nil
	}
	if t, ok := p.Base.(Tunable); ok {
		return t.SetParam(name, v)
	}
	return fmt.Errorf("%w: quota %q", ErrUnknownParam, name)
}

// PlaceWrite delegates to the base policy; over-quota placements are pulled
// back by the next planning round.
func (p *QuotaPolicy) PlaceWrite(ctx WriteCtx, tiers []TierInfo) int {
	return p.Base.PlaceWrite(ctx, tiers)
}

// PlanMigrations first emits quota-enforcement demotions, then the base
// policy's own plan. Demotions target the next slower *plain* tier:
// stripe tiers (TierInfo.Stripe) are skipped — shuffling a tenant's
// overflow onto an erasure-coded set fans every file out across remote
// nodes — and quarantined tiers never appear here at all (the Policy
// Runner snapshots only healthy tiers and drops any move that touches a
// tier whose breaker opened after the snapshot).
func (p *QuotaPolicy) PlanMigrations(tiers []TierInfo, files []FileStat, now time.Duration) []Move {
	var moves []Move

	// next maps a tier to the nearest slower non-stripe tier (tiers arrive
	// fastest-first). A stripe tier that is itself over quota still demotes
	// — only the *destination* selection avoids stripes.
	next := map[int]int{}
	for i := range tiers {
		for j := i + 1; j < len(tiers); j++ {
			if !tiers[j].Stripe {
				next[tiers[i].ID] = tiers[j].ID
				break
			}
		}
	}

	for _, q := range p.quotas() {
		dst, ok := next[q.Tier]
		if !ok {
			continue // no slower plain tier to demote to
		}
		var matching []FileStat
		var used int64
		for _, f := range files {
			if !strings.HasPrefix(f.Path, q.Prefix) {
				continue
			}
			if b := f.TierBytes[q.Tier]; b > 0 {
				matching = append(matching, f)
				used += b
			}
		}
		if used <= q.Bytes {
			continue
		}
		// Demote coldest first until the prefix fits its budget.
		sort.Slice(matching, func(i, j int) bool {
			return matching[i].LastAccess < matching[j].LastAccess
		})
		over := used - q.Bytes
		for _, f := range matching {
			if over <= 0 {
				break
			}
			moves = append(moves, Move{Path: f.Path, SrcTier: q.Tier, DstTier: dst, Off: 0, N: -1, Quota: true})
			over -= f.TierBytes[q.Tier]
		}
	}

	return append(moves, p.Base.PlanMigrations(tiers, files, now)...)
}
