package policy

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewFileStatDefaultsReplica(t *testing.T) {
	fs := NewFileStat("/x", 4096)
	if fs.Replica != -1 {
		t.Fatalf("NewFileStat Replica = %d, want -1 (unreplicated)", fs.Replica)
	}
	if fs.Path != "/x" || fs.Size != 4096 {
		t.Fatalf("NewFileStat = %+v", fs)
	}
	// The zero-value footgun the constructor exists for: a hand-built
	// FileStat reads as "mirrored on tier 0".
	var raw FileStat
	if raw.Replica != 0 {
		t.Fatal("zero FileStat.Replica changed; update the NewFileStat docs")
	}
}

func TestLRUParamsEnumerateAndSet(t *testing.T) {
	p := DefaultLRU()
	params := p.Params()
	if len(params) != 3 {
		t.Fatalf("LRU exposes %d params, want 3", len(params))
	}
	byName := map[string]Param{}
	for _, pr := range params {
		byName[pr.Name] = pr
		if pr.Step <= 0 || pr.Min >= pr.Max {
			t.Errorf("param %s has degenerate range/step: %+v", pr.Name, pr)
		}
		if pr.Value < pr.Min || pr.Value > pr.Max {
			t.Errorf("param %s default %v outside [%v, %v]", pr.Name, pr.Value, pr.Min, pr.Max)
		}
	}
	if byName["high_watermark"].Value != 0.9 || byName["low_watermark"].Value != 0.7 {
		t.Fatalf("default watermarks via Params: %+v", byName)
	}

	if err := p.SetParam("high_watermark", 0.8); err != nil {
		t.Fatal(err)
	}
	if got := p.highWM(); got != 0.8 {
		t.Fatalf("highWM after SetParam = %v", got)
	}
	// Struct field is untouched — it stays the initial config.
	if p.HighWatermark != 0.9 {
		t.Fatalf("SetParam mutated the struct field: %v", p.HighWatermark)
	}

	// Clamping: a wedging value is pulled into the safe range, not applied.
	if err := p.SetParam("high_watermark", 0.0); err != nil {
		t.Fatal(err)
	}
	if got := p.highWM(); got != lruWMMin {
		t.Fatalf("clamped highWM = %v, want %v", got, lruWMMin)
	}
	if err := p.SetParam("promote_window_ns", float64(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := p.promoteWin(); got != time.Duration(lruWinMax) {
		t.Fatalf("clamped promote window = %v", got)
	}

	if err := p.SetParam("nope", 1); !errors.Is(err, ErrUnknownParam) {
		t.Fatalf("unknown param error = %v", err)
	}
}

func TestLRULowWatermarkNeverExceedsHigh(t *testing.T) {
	p := DefaultLRU()
	if err := p.SetParam("low_watermark", 0.95); err != nil {
		t.Fatal(err)
	}
	if err := p.SetParam("high_watermark", 0.6); err != nil {
		t.Fatal(err)
	}
	if low, high := p.lowWM(), p.highWM(); low > high-0.02+1e-9 {
		t.Fatalf("low %v not held below high %v", low, high)
	}
}

func TestTPFSAndHotColdTunable(t *testing.T) {
	tp := DefaultTPFS()
	if err := tp.SetParam("small_threshold_bytes", float64(128<<10)); err != nil {
		t.Fatal(err)
	}
	tiers := threeTiers(0, 0, 0)
	// A 100 KiB async write is now "small": it must land on the fastest tier.
	if got := tp.PlaceWrite(WriteCtx{Path: "/x", N: 100 << 10}, tiers); got != 0 {
		t.Fatalf("tuned small write placed on %d", got)
	}

	hc := DefaultHotCold()
	if err := hc.SetParam("hot_heat", 1.0); err != nil {
		t.Fatal(err)
	}
	files := []FileStat{{Path: "/f", Size: 4096, Heat: 2, Tiers: []int{1}, TierBytes: map[int]int64{1: 4096}, Replica: -1}}
	moves := hc.PlanMigrations(tiers, files, 0)
	if len(moves) != 1 || !moves[0].Promote {
		t.Fatalf("tuned hot_heat did not promote: %v", moves)
	}
}

func TestSetParamConcurrentWithPlanning(t *testing.T) {
	// SetParam races PlaceWrite/PlanMigrations by contract; run them
	// together so `go test -race ./internal/policy` proves the atomics.
	p := DefaultLRU()
	tiers := threeTiers(900, 0, 0)
	files := []FileStat{{Path: "/a", Size: 512, LastAccess: 1, Tiers: []int{0}, TierBytes: map[int]int64{0: 512}, Replica: -1}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = p.SetParam("high_watermark", 0.5+float64(i%40)/100)
			_ = p.SetParam("low_watermark", 0.4+float64(i%30)/100)
			_ = p.SetParam("promote_window_ns", float64(time.Millisecond))
		}
	}()
	for i := 0; i < 2000; i++ {
		_ = p.PlaceWrite(WriteCtx{Path: "/a", N: 64}, tiers)
		_ = p.PlanMigrations(tiers, files, time.Duration(i))
	}
	close(stop)
	wg.Wait()
}

func TestQuotaPolicyNameRendersConfig(t *testing.T) {
	p := &QuotaPolicy{Base: DefaultLRU(), Quotas: []Quota{
		{Prefix: "/a/", Tier: 0, Bytes: 64 << 20},
		{Prefix: "/b/", Tier: 1, Bytes: 2 << 30},
	}}
	want := "lru+quota[/a/:t0:64MiB,/b/:t1:2GiB]"
	if got := p.Name(); got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	// Tuning a cap shows up in the rendered name (the live table).
	if err := p.SetParam("quota_bytes:/a/:t0", float64(32<<20)); err != nil {
		t.Fatal(err)
	}
	if got := p.Name(); !strings.Contains(got, "/a/:t0:32MiB") {
		t.Fatalf("tuned Name = %q", got)
	}
}

func TestQuotaPolicyTunableComposition(t *testing.T) {
	p := &QuotaPolicy{Base: DefaultLRU(), Quotas: []Quota{{Prefix: "/t/", Tier: 0, Bytes: 8 << 20}}}
	params := p.Params()
	// Base knobs plus the quota cap.
	if len(params) != 4 {
		t.Fatalf("composed params = %d, want 4", len(params))
	}
	name := quotaParamName(p.Quotas[0])
	if err := p.SetParam(name, float64(4<<20)); err != nil {
		t.Fatal(err)
	}
	if got := p.quotas()[0].Bytes; got != 4<<20 {
		t.Fatalf("tuned quota = %d", got)
	}
	// The exported config is untouched (clamp anchor).
	if p.Quotas[0].Bytes != 8<<20 {
		t.Fatalf("SetParam mutated Quotas: %d", p.Quotas[0].Bytes)
	}
	// Clamp floor: a cap of zero would demote the whole tenant; it clamps
	// to the 1/8× floor (1 MiB here).
	if err := p.SetParam(name, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.quotas()[0].Bytes; got != 1<<20 {
		t.Fatalf("clamped quota = %d, want 1MiB floor", got)
	}
	// Base-policy knobs forward through the composite.
	if err := p.SetParam("high_watermark", 0.85); err != nil {
		t.Fatal(err)
	}
	if got := p.Base.(*LRU).highWM(); got != 0.85 {
		t.Fatalf("forwarded base knob = %v", got)
	}
	if err := p.SetParam("bogus", 1); !errors.Is(err, ErrUnknownParam) {
		t.Fatalf("unknown composed param error = %v", err)
	}
}

func TestQuotaDemotionSkipsStripeTier(t *testing.T) {
	// Tier layout: PM(0), stripe(1), HDD(2). The over-quota prefix on PM
	// must demote past the stripe set to the plain HDD tier.
	tiers := threeTiers(0, 0, 0)
	tiers[1].Stripe = true
	p := &QuotaPolicy{Base: Pinned{Tier: 0}, Quotas: []Quota{{Prefix: "/t/", Tier: 0, Bytes: 1 << 20}}}
	files := []FileStat{
		{Path: "/t/a", Size: 2 << 20, LastAccess: 1, Tiers: []int{0}, TierBytes: map[int]int64{0: 2 << 20}, Replica: -1},
	}
	moves := p.PlanMigrations(tiers, files, 10)
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].DstTier != 2 {
		t.Fatalf("quota demotion targeted tier %d, want plain tier 2 (skip stripe)", moves[0].DstTier)
	}
	if !moves[0].Quota {
		t.Fatal("quota demotion not flagged Move.Quota")
	}

	// Only stripe tiers below: the quota is unenforceable, no moves.
	tiers[2].Stripe = true
	if moves := p.PlanMigrations(tiers, files, 10); len(moves) != 0 {
		t.Fatalf("stripe-only demotion target produced moves: %v", moves)
	}
}
