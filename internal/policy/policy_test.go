package policy

import (
	"testing"
	"time"

	"muxfs/internal/device"
)

// threeTiers builds PM/SSD/HDD TierInfos with the given used bytes.
func threeTiers(pmUsed, ssdUsed, hddUsed int64) []TierInfo {
	return []TierInfo{
		{ID: 0, Name: "nova", Class: device.PM, Capacity: 100 << 20, Used: pmUsed,
			ReadLat: 170 * time.Nanosecond, WriteLat: 90 * time.Nanosecond},
		{ID: 1, Name: "xfs", Class: device.SSD, Capacity: 1 << 30, Used: ssdUsed,
			ReadLat: 10 * time.Microsecond, WriteLat: 10 * time.Microsecond},
		{ID: 2, Name: "ext4", Class: device.HDD, Capacity: 8 << 30, Used: hddUsed,
			ReadLat: 5 * time.Millisecond, WriteLat: 5 * time.Millisecond},
	}
}

func TestTierInfoHelpers(t *testing.T) {
	ti := TierInfo{Capacity: 100, Used: 25}
	if ti.Free() != 75 {
		t.Errorf("Free = %d", ti.Free())
	}
	if ti.UsedFrac() != 0.25 {
		t.Errorf("UsedFrac = %v", ti.UsedFrac())
	}
	empty := TierInfo{}
	if empty.UsedFrac() != 1 {
		t.Errorf("zero-capacity UsedFrac = %v, want 1 (treat as full)", empty.UsedFrac())
	}
}

func TestPinned(t *testing.T) {
	p := Pinned{Tier: 2}
	if p.Name() != "pinned" {
		t.Error("name")
	}
	if got := p.PlaceWrite(WriteCtx{N: 1 << 30}, threeTiers(0, 0, 0)); got != 2 {
		t.Errorf("PlaceWrite = %d", got)
	}
	if moves := p.PlanMigrations(threeTiers(1<<30, 0, 0), nil, 0); moves != nil {
		t.Errorf("Pinned planned moves: %v", moves)
	}
}

func TestLRUPlaceWrite(t *testing.T) {
	p := DefaultLRU()
	// Empty hierarchy: fastest tier.
	if got := p.PlaceWrite(WriteCtx{N: 4096}, threeTiers(0, 0, 0)); got != 0 {
		t.Errorf("empty: placed on %d", got)
	}
	// PM nearly full: spill to SSD.
	if got := p.PlaceWrite(WriteCtx{N: 20 << 20}, threeTiers(95<<20, 0, 0)); got != 1 {
		t.Errorf("full PM: placed on %d", got)
	}
	// Everything full past watermark: last tier takes it anyway.
	tiers := threeTiers(100<<20, 1<<30, 8<<30)
	if got := p.PlaceWrite(WriteCtx{N: 4096}, tiers); got != 2 {
		t.Errorf("all full: placed on %d", got)
	}
}

func TestLRUDemotesColdestFirst(t *testing.T) {
	p := &LRU{HighWatermark: 0.5, LowWatermark: 0.3}
	tiers := threeTiers(80<<20, 0, 0) // PM 80% full, need = 80-30 = 50 MiB out
	files := []FileStat{
		{Path: "/hot", Size: 20 << 20, LastAccess: 100 * time.Millisecond, Tiers: []int{0}},
		{Path: "/cold", Size: 60 << 20, LastAccess: 1 * time.Millisecond, Tiers: []int{0}},
	}
	moves := p.PlanMigrations(tiers, files, 200*time.Millisecond)
	if len(moves) == 0 {
		t.Fatal("no demotion planned for over-watermark tier")
	}
	if moves[0].Path != "/cold" || moves[0].SrcTier != 0 || moves[0].DstTier != 1 {
		t.Fatalf("first move = %+v, want /cold PM->SSD", moves[0])
	}
	// The 60 MiB cold file alone reaches the low watermark; the hot file
	// must stay.
	for _, mv := range moves {
		if mv.Path == "/hot" && !mv.Promote {
			t.Fatalf("hot file demoted despite cold candidate covering the need: %+v", moves)
		}
	}
}

func TestLRUPromotesRecentlyAccessed(t *testing.T) {
	p := &LRU{HighWatermark: 0.9, LowWatermark: 0.7, PromoteWindow: time.Millisecond}
	tiers := threeTiers(0, 100<<20, 0)
	now := 10 * time.Millisecond
	files := []FileStat{
		{Path: "/recent", Size: 1 << 20, LastAccess: now - 500*time.Microsecond, Tiers: []int{1}},
		{Path: "/stale", Size: 1 << 20, LastAccess: now - 8*time.Millisecond, Tiers: []int{1}},
	}
	moves := p.PlanMigrations(tiers, files, now)
	var promoted []string
	for _, mv := range moves {
		if mv.Promote {
			promoted = append(promoted, mv.Path)
			if mv.SrcTier != 1 || mv.DstTier != 0 {
				t.Errorf("promotion %+v not SSD->PM", mv)
			}
		}
	}
	if len(promoted) != 1 || promoted[0] != "/recent" {
		t.Fatalf("promoted %v, want only /recent", promoted)
	}
}

func TestLRUPromotionRespectsRoom(t *testing.T) {
	p := &LRU{HighWatermark: 0.9, LowWatermark: 0.7, PromoteWindow: time.Hour}
	tiers := threeTiers(70<<20, 100<<20, 0) // PM already at its low watermark
	files := []FileStat{
		{Path: "/f", Size: 10 << 20, LastAccess: 0, Tiers: []int{1}},
	}
	for _, mv := range p.PlanMigrations(tiers, files, time.Nanosecond) {
		if mv.Promote && mv.DstTier == 0 {
			t.Fatalf("promotion into a full tier: %+v", mv)
		}
	}
}

func TestLRUMirrorPromoteEmitsMirrorMoves(t *testing.T) {
	p := &LRU{HighWatermark: 0.9, LowWatermark: 0.7, PromoteWindow: time.Millisecond, MirrorPromote: true}
	tiers := threeTiers(0, 100<<20, 0)
	now := 10 * time.Millisecond
	files := []FileStat{
		{Path: "/warm", Size: 1 << 20, LastAccess: now - 500*time.Microsecond, Tiers: []int{1}, Replica: -1},
		{Path: "/stale", Size: 1 << 20, LastAccess: now - 8*time.Millisecond, Tiers: []int{1}, Replica: -1},
	}
	moves := p.PlanMigrations(tiers, files, now)
	if len(moves) != 1 {
		t.Fatalf("moves = %+v, want exactly one", moves)
	}
	mv := moves[0]
	if mv.Path != "/warm" || !mv.Mirror || !mv.Promote || mv.SrcTier != 1 || mv.DstTier != 0 {
		t.Fatalf("move = %+v, want /warm mirror-promote SSD->PM", mv)
	}
}

func TestLRUMirrorPromoteSkipsMirroredAndResident(t *testing.T) {
	p := &LRU{HighWatermark: 0.9, LowWatermark: 0.7, PromoteWindow: time.Hour, MirrorPromote: true}
	tiers := threeTiers(0, 100<<20, 0)
	files := []FileStat{
		{Path: "/mirrored", Size: 1 << 20, LastAccess: 0, Tiers: []int{1}, Replica: 0},
		{Path: "/resident", Size: 1 << 20, LastAccess: 0, Tiers: []int{0, 1}, Replica: -1},
	}
	if moves := p.PlanMigrations(tiers, files, time.Nanosecond); len(moves) != 0 {
		t.Fatalf("moves = %+v, want none (already mirrored / already resident)", moves)
	}
}

func TestLRUMirrorPromoteBudgetsMirrorBytes(t *testing.T) {
	// PM primaries sit at the low watermark (70 of 100 MiB); existing mirror
	// bytes must eat the promotion room just like primary bytes do.
	p := &LRU{HighWatermark: 0.9, LowWatermark: 0.7, PromoteWindow: time.Hour, MirrorPromote: true}
	tiers := threeTiers(60<<20, 100<<20, 0)
	files := []FileStat{
		{Path: "/pinned", Size: 10 << 20, LastAccess: 0, Tiers: []int{2}, Replica: 0},
		{Path: "/warm", Size: 10 << 20, LastAccess: 0, Tiers: []int{1}, Replica: -1},
	}
	for _, mv := range p.PlanMigrations(tiers, files, time.Nanosecond) {
		if mv.Promote && mv.DstTier == 0 {
			t.Fatalf("promotion into a tier whose mirror bytes fill it: %+v", mv)
		}
	}
}

func TestLRUMirrorPromoteClearsMirrorsBeforeDemoting(t *testing.T) {
	// PM holds 40 MiB of primaries plus 40 MiB of mirror bytes: over the 50%
	// high watermark only when mirrors are counted. The plan must clear the
	// coldest mirrors first — freeing fast-tier bytes without copying — and
	// not demote any primary once the clears cover the need.
	p := &LRU{HighWatermark: 0.5, LowWatermark: 0.3, MirrorPromote: true}
	tiers := threeTiers(40<<20, 0, 0)
	files := []FileStat{
		{Path: "/prim", Size: 40 << 20, LastAccess: 90 * time.Millisecond, Tiers: []int{0}, Replica: -1},
		{Path: "/mcold", Size: 30 << 20, LastAccess: 1 * time.Millisecond, Tiers: []int{1}, Replica: 0},
		{Path: "/mwarm", Size: 30 << 20, LastAccess: 80 * time.Millisecond, Tiers: []int{1}, Replica: 0},
	}
	moves := p.PlanMigrations(tiers, files, 200*time.Millisecond)
	if len(moves) == 0 {
		t.Fatal("no moves for a tier over-watermark on mirror bytes")
	}
	// need = 40+60 - 30 = 70 MiB: both mirrors clear (coldest first), and
	// the remaining 10 MiB demotes the primary — in that order.
	if !moves[0].Mirror || moves[0].DstTier != -1 || moves[0].Path != "/mcold" {
		t.Fatalf("first move = %+v, want clear of coldest mirror /mcold", moves[0])
	}
	for i, mv := range moves {
		if mv.Mirror && mv.DstTier == -1 && i > 0 && !moves[i-1].Mirror {
			t.Fatalf("mirror clear after a primary demotion: %+v", moves)
		}
		if mv.Mirror && mv.SrcTier != 0 {
			t.Fatalf("mirror clear names tier %d, want the over-full tier 0: %+v", mv.SrcTier, mv)
		}
	}
}

func TestLRUMirrorPromoteOffIsClassic(t *testing.T) {
	// With the knob off, replica marks on the FileStats must not perturb the
	// plan: byte-identical to the classic LRU over the same inputs.
	tiers := threeTiers(80<<20, 100<<20, 0)
	now := 200 * time.Millisecond
	files := []FileStat{
		{Path: "/a", Size: 60 << 20, LastAccess: 1 * time.Millisecond, Tiers: []int{0}, Replica: 1},
		{Path: "/b", Size: 20 << 20, LastAccess: now - 100*time.Microsecond, Tiers: []int{0}, Replica: -1},
		{Path: "/c", Size: 1 << 20, LastAccess: now - 200*time.Microsecond, Tiers: []int{1}, Replica: 0},
	}
	stripped := make([]FileStat, len(files))
	copy(stripped, files)
	for i := range stripped {
		stripped[i].Replica = -1
	}
	p := &LRU{HighWatermark: 0.5, LowWatermark: 0.3, PromoteWindow: time.Millisecond}
	got := p.PlanMigrations(tiers, files, now)
	want := p.PlanMigrations(tiers, stripped, now)
	if len(got) != len(want) {
		t.Fatalf("plans diverge: %+v vs %+v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("move %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
	for _, mv := range got {
		if mv.Mirror {
			t.Fatalf("classic plan emitted a mirror move: %+v", mv)
		}
	}
}

func TestTPFSRouting(t *testing.T) {
	p := DefaultTPFS()
	tiers := threeTiers(0, 0, 0)
	if got := p.PlaceWrite(WriteCtx{N: 4 << 10}, tiers); got != 0 {
		t.Errorf("small write placed on %d, want PM", got)
	}
	if got := p.PlaceWrite(WriteCtx{N: 1 << 20}, tiers); got != 1 {
		t.Errorf("medium write placed on %d, want SSD", got)
	}
	if got := p.PlaceWrite(WriteCtx{N: 8 << 20}, tiers); got != 2 {
		t.Errorf("large write placed on %d, want HDD", got)
	}
	// Synchronous writes go fast regardless of size.
	if got := p.PlaceWrite(WriteCtx{N: 8 << 20, Sync: true}, tiers); got != 0 {
		t.Errorf("sync write placed on %d, want PM", got)
	}
	// Single tier: no choice.
	if got := p.PlaceWrite(WriteCtx{N: 1}, tiers[2:]); got != 2 {
		t.Errorf("single-tier placement = %d", got)
	}
}

func TestHotColdClassification(t *testing.T) {
	p := DefaultHotCold()
	tiers := threeTiers(0, 0, 0)
	files := []FileStat{
		{Path: "/hot", Size: 1 << 20, Heat: 10, Tiers: []int{1}},   // promote
		{Path: "/cold", Size: 1 << 20, Heat: 0.1, Tiers: []int{1}}, // demote
		{Path: "/warm", Size: 1 << 20, Heat: 2, Tiers: []int{1}},   // stay
	}
	moves := p.PlanMigrations(tiers, files, 0)
	got := map[string]Move{}
	for _, mv := range moves {
		got[mv.Path] = mv
	}
	if mv, ok := got["/hot"]; !ok || !mv.Promote || mv.DstTier != 0 {
		t.Errorf("hot file move = %+v", got["/hot"])
	}
	if mv, ok := got["/cold"]; !ok || mv.Promote || mv.DstTier != 2 {
		t.Errorf("cold file move = %+v", got["/cold"])
	}
	if _, ok := got["/warm"]; ok {
		t.Errorf("warm file moved: %+v", got["/warm"])
	}
	// Edge tiers do not move off the ends.
	edge := []FileStat{
		{Path: "/top", Size: 1, Heat: 10, Tiers: []int{0}},
		{Path: "/bottom", Size: 1, Heat: 0, Tiers: []int{2}},
	}
	if moves := p.PlanMigrations(tiers, edge, 0); len(moves) != 0 {
		t.Errorf("edge moves: %+v", moves)
	}
}

func TestFuncPolicyDefaults(t *testing.T) {
	var p Func
	if p.Name() != "func" {
		t.Error("default name")
	}
	tiers := threeTiers(0, 0, 0)
	if got := p.PlaceWrite(WriteCtx{}, tiers); got != 0 {
		t.Errorf("nil Place fell to %d, want fastest", got)
	}
	if moves := p.PlanMigrations(tiers, nil, 0); moves != nil {
		t.Error("nil Plan produced moves")
	}
	named := Func{PolicyName: "custom", Place: func(WriteCtx, []TierInfo) int { return 7 }}
	if named.Name() != "custom" || named.PlaceWrite(WriteCtx{}, tiers) != 7 {
		t.Error("custom Func not honored")
	}
}

func TestQuotaPolicyEnforcement(t *testing.T) {
	base := Pinned{Tier: 0}
	p := &QuotaPolicy{
		Base:   base,
		Quotas: []Quota{{Prefix: "/scratch/", Tier: 0, Bytes: 1 << 20}},
	}
	if p.Name() != "pinned+quota[/scratch/:t0:1MiB]" {
		t.Errorf("Name = %q", p.Name())
	}
	tiers := threeTiers(0, 0, 0)
	// Placement still delegates to the base policy.
	if got := p.PlaceWrite(WriteCtx{Path: "/scratch/x", N: 4096}, tiers); got != 0 {
		t.Errorf("PlaceWrite = %d", got)
	}
	files := []FileStat{
		{Path: "/scratch/a", Size: 1 << 20, LastAccess: 5, Tiers: []int{0}, TierBytes: map[int]int64{0: 1 << 20}},
		{Path: "/scratch/b", Size: 1 << 20, LastAccess: 1, Tiers: []int{0}, TierBytes: map[int]int64{0: 1 << 20}},
		{Path: "/keep/c", Size: 4 << 20, LastAccess: 0, Tiers: []int{0}, TierBytes: map[int]int64{0: 4 << 20}},
	}
	moves := p.PlanMigrations(tiers, files, 10)
	var demoted []string
	for _, mv := range moves {
		if mv.SrcTier == 0 && mv.DstTier == 1 {
			demoted = append(demoted, mv.Path)
		}
	}
	// /scratch holds 2 MiB against a 1 MiB quota: demote exactly the
	// coldest 1 MiB (/scratch/b); /keep is outside the prefix.
	if len(demoted) != 1 || demoted[0] != "/scratch/b" {
		t.Fatalf("demoted = %v, want only /scratch/b", demoted)
	}
}

func TestQuotaPolicyUnderBudgetNoMoves(t *testing.T) {
	p := &QuotaPolicy{Base: Pinned{Tier: 0}, Quotas: []Quota{{Prefix: "/", Tier: 0, Bytes: 1 << 30}}}
	files := []FileStat{{Path: "/x", Size: 1 << 20, Tiers: []int{0}, TierBytes: map[int]int64{0: 1 << 20}}}
	if moves := p.PlanMigrations(threeTiers(1<<20, 0, 0), files, 0); len(moves) != 0 {
		t.Fatalf("under-budget moves: %v", moves)
	}
}

func TestQuotaOnSlowestTierIgnored(t *testing.T) {
	// No slower tier exists to demote to; the quota is unenforceable and
	// must not panic or emit moves.
	p := &QuotaPolicy{Base: Pinned{Tier: 2}, Quotas: []Quota{{Prefix: "/", Tier: 2, Bytes: 1}}}
	files := []FileStat{{Path: "/x", Size: 1 << 20, Tiers: []int{2}, TierBytes: map[int]int64{2: 1 << 20}}}
	if moves := p.PlanMigrations(threeTiers(0, 0, 1<<20), files, 0); len(moves) != 0 {
		t.Fatalf("slowest-tier quota moves: %v", moves)
	}
}
