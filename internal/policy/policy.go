// Package policy defines Mux's user-defined tiering policy interface and
// the built-in policies.
//
// The paper (§2.1) argues that "all the placement and migration policies in
// existing tiered file systems can be expressed using simple functions" —
// and encodes them as kernel modules or eBPF programs. Here a policy is a
// plain Go value implementing Policy: PlaceWrite is the synchronous
// placement hook on the write path, PlanMigrations is the asynchronous
// rebalancing hook the Policy Runner invokes.
package policy

import (
	"time"

	"muxfs/internal/device"
)

// TierInfo is the device profile + usage snapshot a policy decides over.
type TierInfo struct {
	ID       int
	Name     string
	Class    device.Class
	Capacity int64
	Used     int64
	ReadLat  time.Duration
	WriteLat time.Duration

	// Stripe marks a composite erasure-coded capacity tier (internal/ec).
	// Stripe tiers hold whole-file shards across remote nodes; policies
	// that shuffle individual files for capacity reasons (quota demotion)
	// should prefer a plain slower tier over a stripe set when one exists,
	// since a stripe write fans out to every node.
	Stripe bool
}

// Free returns the unallocated bytes of the tier.
func (t TierInfo) Free() int64 { return t.Capacity - t.Used }

// UsedFrac returns the fill fraction in [0, 1].
func (t TierInfo) UsedFrac() float64 {
	if t.Capacity == 0 {
		return 1
	}
	return float64(t.Used) / float64(t.Capacity)
}

// WriteCtx describes one write about to be placed.
type WriteCtx struct {
	Path     string
	Off, N   int64
	FileSize int64 // size before this write
	Sync     bool  // caller hinted synchronous durability (O_SYNC-ish)
}

// FileStat is the per-file heat snapshot used for migration planning.
type FileStat struct {
	Path       string
	Size       int64
	LastAccess time.Duration // virtual time of last read/write
	Heat       float64       // decayed access frequency
	Tiers      []int         // tier IDs currently holding blocks
	TierBytes  map[int]int64 // bytes of the file mapped on each tier

	// Replica is the file's mirror tier, -1 when unreplicated. (The Policy
	// Runner always fills it; hand-built FileStats should set it explicitly
	// or be built with NewFileStat — the zero value would read as "mirrored
	// on tier 0".)
	Replica int
	// ReplicaDegraded marks a mirror that diverged after a failed mirror
	// write; it serves no reads until repaired.
	ReplicaDegraded bool
}

// NewFileStat returns a FileStat with the non-obvious zero values fixed up:
// Replica is -1 (unreplicated) rather than the footgun zero value, which
// would read as "mirrored on tier 0". External policy authors building
// FileStats by hand (tests, custom planners) should start from this.
func NewFileStat(path string, size int64) FileStat {
	return FileStat{Path: path, Size: size, Replica: -1}
}

// Move is one recommended block migration. N == -1 means the whole file.
//
// A Move with Mirror set is a replica-placement action instead of a block
// migration: DstTier >= 0 establishes (or re-syncs) a full mirror of the
// file on that tier, DstTier == -1 clears the file's mirror (SrcTier names
// the tier being vacated). Mirror moves let a policy promote-by-mirroring —
// a warm file gains a fast-tier copy for the read router without giving up
// its primary placement — and clear mirrors ahead of primary demotions.
type Move struct {
	Path    string
	SrcTier int
	DstTier int
	Off, N  int64
	Promote bool // true when moving toward a faster tier
	Mirror  bool // replica placement (SetReplica/ClearReplica), not a migration
	// Quota marks a demotion emitted to enforce a capacity quota
	// (QuotaPolicy) rather than by the base policy's own plan; the
	// migration engine counts executed quota moves separately in
	// MigrationStats.QuotaDemotions so quota pressure is visible in
	// telemetry.
	Quota bool
}

// Policy is the user-defined tiering rule set. Implementations must be
// stateless or internally synchronized: Mux may call PlaceWrite
// concurrently.
type Policy interface {
	// Name identifies the policy in logs and benchmark output.
	Name() string
	// PlaceWrite picks the tier for newly allocated blocks of a write.
	// Tiers arrive sorted fastest-first.
	PlaceWrite(ctx WriteCtx, tiers []TierInfo) int
	// PlanMigrations proposes moves given current usage and file heat.
	// The Policy Runner executes them via the OCC Synchronizer.
	PlanMigrations(tiers []TierInfo, files []FileStat, now time.Duration) []Move
}

// fastestWithRoom returns the id of the first (fastest) tier that can hold
// n more bytes below the given fill watermark, else the last tier.
func fastestWithRoom(tiers []TierInfo, n int64, watermark float64) int {
	for _, t := range tiers {
		if float64(t.Used+n) <= watermark*float64(t.Capacity) {
			return t.ID
		}
	}
	return tiers[len(tiers)-1].ID
}
