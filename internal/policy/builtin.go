package policy

import (
	"fmt"
	"sort"
	"time"
)

// Pinned always places on one tier and never migrates. The benchmark
// harness uses it to direct I/O at a single device (experiment E2) and to
// isolate the Mux indirection overhead (E3/E4).
type Pinned struct {
	Tier int
}

// Name identifies the policy.
func (p Pinned) Name() string { return "pinned" }

// PlaceWrite always returns the pinned tier.
func (p Pinned) PlaceWrite(WriteCtx, []TierInfo) int { return p.Tier }

// PlanMigrations never migrates.
func (p Pinned) PlanMigrations([]TierInfo, []FileStat, time.Duration) []Move { return nil }

// LRU is the policy used in the paper's §3 comparison: place data on the
// fastest tier with room; when a tier fills past the high watermark, evict
// the coldest files down one tier; promote files back up when they are
// accessed again ("promotes data back upon access").
type LRU struct {
	// HighWatermark is the fill fraction that triggers demotion (default 0.9).
	HighWatermark float64
	// LowWatermark is the fill demotion drains down to (default 0.7).
	LowWatermark float64
	// PromoteWindow: files accessed within this window get promoted
	// (default 1ms of virtual time — "recently accessed").
	PromoteWindow time.Duration

	// MirrorPromote turns promotion into deliberate mirroring: a recently
	// accessed file on a slower tier gains a fast-tier *mirror* (Move.Mirror)
	// instead of migrating its primary, so the read router can serve it from
	// either copy while the slow tier keeps its settled placement. Mirror
	// bytes are budgeted against the fast tier's low watermark alongside its
	// primary bytes (core usage counters only see authoritative blocks, so
	// the policy tracks the mirror ledger itself from FileStat.Replica), and
	// demotion clears mirrors off an over-full tier before it moves any
	// primaries. Off by default — plans are then identical to the classic
	// LRU.
	MirrorPromote bool

	// Atomic knob overrides (SetParam); the exported fields above stay the
	// initial configuration.
	highK, lowK, winK knob
}

// DefaultLRU returns the watermarks used in the evaluation.
func DefaultLRU() *LRU {
	return &LRU{HighWatermark: 0.9, LowWatermark: 0.7, PromoteWindow: time.Millisecond}
}

// Name identifies the policy.
func (p *LRU) Name() string { return "lru" }

// PlaceWrite picks the fastest tier with room under the high watermark.
func (p *LRU) PlaceWrite(ctx WriteCtx, tiers []TierInfo) int {
	return fastestWithRoom(tiers, ctx.N, p.highWM())
}

func (p *LRU) highWM() float64 {
	def := p.HighWatermark
	if def <= 0 {
		def = 0.9
	}
	return p.highK.load(def)
}

func (p *LRU) lowWM() float64 {
	def := p.LowWatermark
	if def <= 0 {
		def = 0.7
	}
	low := p.lowK.load(def)
	// Safety invariant regardless of what a tuner set: demotion must drain
	// to strictly below the trigger watermark, or every round re-plans the
	// same moves forever. Only a crossing is corrected — a hand-configured
	// small gap is legitimate and stays untouched.
	if high := p.highWM(); low >= high {
		low = high - 0.02
		if low < 0 {
			low = 0
		}
	}
	return low
}

func (p *LRU) promoteWin() time.Duration {
	def := p.PromoteWindow
	if def <= 0 {
		def = time.Millisecond
	}
	return time.Duration(p.winK.load(float64(def)))
}

// LRU knob clamps. The watermark floor keeps demotion from draining the
// fast tier outright; the ceiling keeps placement from wedging a tier at
// 100%. The promote window spans "only the last instant" to "everything
// this epoch".
const (
	lruWMMin  = 0.30
	lruWMMax  = 0.98
	lruWinMin = float64(50 * time.Microsecond)
	lruWinMax = float64(100 * time.Millisecond)
)

// demoteSlack is the headroom under the high watermark at which demotion
// already counts the tier as full. PlaceWrite refuses any write that would
// cross the watermark, so a busy tier's usage converges to just *under*
// high*capacity and a bare ">= high" trigger is unreachable — the fast
// tier silts up with cold files and the demotion path never runs (the E14
// aggressor drill exhibits exactly this plateau). One migration granule of
// slack makes "can no longer admit a typical write" mean "at the
// watermark", which is what keeps data flowing downward under sustained
// ingest.
const demoteSlack = 1 << 20

// Params enumerates the LRU knobs (Tunable).
func (p *LRU) Params() []Param {
	return []Param{
		// Step 0.08: a probe must move the objective past interval noise
		// (sampling jitter on the fast-read fraction is a few percent), and
		// a 4% watermark nudge on a small fast tier does not.
		{Name: "high_watermark", Kind: KindFraction, Value: p.highWM(), Min: lruWMMin, Max: lruWMMax, Step: 0.08},
		{Name: "low_watermark", Kind: KindFraction, Value: p.lowWM(), Min: lruWMMin, Max: lruWMMax, Step: 0.08},
		{Name: "promote_window_ns", Kind: KindDuration, Value: float64(p.promoteWin()), Min: lruWinMin, Max: lruWinMax, Step: float64(250 * time.Microsecond)},
	}
}

// SetParam installs an atomic knob override, clamped into the safe range
// (Tunable). Safe to call concurrently with PlaceWrite/PlanMigrations.
func (p *LRU) SetParam(name string, v float64) error {
	switch name {
	case "high_watermark":
		p.highK.store(clampTo(v, lruWMMin, lruWMMax))
	case "low_watermark":
		p.lowK.store(clampTo(v, lruWMMin, lruWMMax))
	case "promote_window_ns":
		p.winK.store(clampTo(v, lruWinMin, lruWinMax))
	default:
		return fmt.Errorf("%w: lru %q", ErrUnknownParam, name)
	}
	return nil
}

// PlanMigrations demotes cold files off over-full tiers and promotes
// recently accessed files to faster tiers with room.
func (p *LRU) PlanMigrations(tiers []TierInfo, files []FileStat, now time.Duration) []Move {
	var moves []Move
	onTier := func(f FileStat, id int) bool {
		for _, t := range f.Tiers {
			if t == id {
				return true
			}
		}
		return false
	}

	// Mirror ledger (MirrorPromote only): core usage counters map only
	// authoritative blocks, so mirror bytes are accounted here from the
	// FileStat replica marks.
	var mirroredOn map[int]int64
	if p.MirrorPromote {
		mirroredOn = make(map[int]int64)
		for _, f := range files {
			if f.Replica >= 0 {
				mirroredOn[f.Replica] += f.Size
			}
		}
	}

	// Demotion: for each over-watermark tier, push coldest files down.
	// Under MirrorPromote the watermark test counts mirror bytes too, and
	// mirrors are cleared first — dropping a mirror frees fast-tier bytes
	// without copying anything, and the read router stops using it the
	// instant the clear lands.
	for i, t := range tiers {
		if i == len(tiers)-1 {
			continue
		}
		extra := mirroredOn[t.ID] // nil map reads as 0 when MirrorPromote is off
		if float64(t.Used+extra)+demoteSlack < p.highWM()*float64(t.Capacity) {
			continue
		}
		dst := tiers[i+1].ID
		need := t.Used + extra - int64(p.lowWM()*float64(t.Capacity))
		if p.MirrorPromote {
			var mirrored []FileStat
			for _, f := range files {
				if f.Replica == t.ID {
					mirrored = append(mirrored, f)
				}
			}
			sort.Slice(mirrored, func(a, b int) bool {
				return mirrored[a].LastAccess < mirrored[b].LastAccess
			})
			for _, f := range mirrored {
				if need <= 0 {
					break
				}
				moves = append(moves, Move{Path: f.Path, SrcTier: t.ID, DstTier: -1, Off: 0, N: -1, Mirror: true})
				need -= f.Size
			}
		}
		var candidates []FileStat
		for _, f := range files {
			if onTier(f, t.ID) {
				candidates = append(candidates, f)
			}
		}
		sort.Slice(candidates, func(a, b int) bool {
			return candidates[a].LastAccess < candidates[b].LastAccess
		})
		for _, f := range candidates {
			if need <= 0 {
				break
			}
			moves = append(moves, Move{Path: f.Path, SrcTier: t.ID, DstTier: dst, Off: 0, N: -1})
			need -= f.Size
		}
	}

	// Promotion: recently accessed files living on slower tiers move up
	// when the faster tier has room. Under MirrorPromote the move is a
	// mirror placement instead — the warm file gains a fast-tier copy for
	// the read router and keeps its primary where it is — and the room
	// budget charges existing mirror bytes against the destination.
	window := p.promoteWin()
	for i := 1; i < len(tiers); i++ {
		src := tiers[i]
		dst := tiers[i-1]
		room := int64(p.lowWM()*float64(dst.Capacity)) - dst.Used - mirroredOn[dst.ID]
		for _, f := range files {
			if room <= 0 {
				break
			}
			if !onTier(f, src.ID) || now-f.LastAccess > window {
				continue
			}
			if p.MirrorPromote {
				if f.Replica == dst.ID || onTier(f, dst.ID) {
					continue // already mirrored or already resident there
				}
				moves = append(moves, Move{Path: f.Path, SrcTier: src.ID, DstTier: dst.ID, Off: 0, N: -1, Promote: true, Mirror: true})
			} else {
				moves = append(moves, Move{Path: f.Path, SrcTier: src.ID, DstTier: dst.ID, Off: 0, N: -1, Promote: true})
			}
			room -= f.Size
		}
	}
	return moves
}

// TPFSLike reproduces the TPFS placement rule the paper cites as an example
// of a policy expressible as a simple function (§2.1): small or synchronous
// writes go to the fastest (PM) tier, large asynchronous writes go down the
// hierarchy by size.
type TPFSLike struct {
	// SmallThreshold routes writes below it to the fastest tier
	// (default 64 KiB).
	SmallThreshold int64
	// LargeThreshold routes writes above it to the slowest tier
	// (default 4 MiB); in-between sizes go to the middle tier.
	LargeThreshold int64

	smallK, largeK knob
}

// DefaultTPFS returns thresholds in the spirit of TPFS.
func DefaultTPFS() *TPFSLike {
	return &TPFSLike{SmallThreshold: 64 << 10, LargeThreshold: 4 << 20}
}

// Name identifies the policy.
func (p *TPFSLike) Name() string { return "tpfs" }

func (p *TPFSLike) smallThr() int64 { return int64(p.smallK.load(float64(p.SmallThreshold))) }
func (p *TPFSLike) largeThr() int64 { return int64(p.largeK.load(float64(p.LargeThreshold))) }

// TPFS knob clamps: the small threshold stays a "small write" (one block
// to 1 MiB), the large threshold a "large write" (256 KiB to 64 MiB).
const (
	tpfsSmallMin = float64(4 << 10)
	tpfsSmallMax = float64(1 << 20)
	tpfsLargeMin = float64(256 << 10)
	tpfsLargeMax = float64(64 << 20)
)

// Params enumerates the TPFS knobs (Tunable).
func (p *TPFSLike) Params() []Param {
	return []Param{
		{Name: "small_threshold_bytes", Kind: KindBytes, Value: float64(p.smallThr()), Min: tpfsSmallMin, Max: tpfsSmallMax, Step: 16 << 10},
		{Name: "large_threshold_bytes", Kind: KindBytes, Value: float64(p.largeThr()), Min: tpfsLargeMin, Max: tpfsLargeMax, Step: 512 << 10},
	}
}

// SetParam installs an atomic knob override, clamped (Tunable).
func (p *TPFSLike) SetParam(name string, v float64) error {
	switch name {
	case "small_threshold_bytes":
		p.smallK.store(clampTo(v, tpfsSmallMin, tpfsSmallMax))
	case "large_threshold_bytes":
		p.largeK.store(clampTo(v, tpfsLargeMin, tpfsLargeMax))
	default:
		return fmt.Errorf("%w: tpfs %q", ErrUnknownParam, name)
	}
	return nil
}

// PlaceWrite routes by I/O size and synchronicity.
func (p *TPFSLike) PlaceWrite(ctx WriteCtx, tiers []TierInfo) int {
	if len(tiers) == 1 {
		return tiers[0].ID
	}
	if ctx.Sync || ctx.N <= p.smallThr() {
		return fastestWithRoom(tiers, ctx.N, 0.95)
	}
	if ctx.N >= p.largeThr() {
		return tiers[len(tiers)-1].ID
	}
	mid := tiers[len(tiers)/2]
	if float64(mid.Used+ctx.N) <= 0.95*float64(mid.Capacity) {
		return mid.ID
	}
	return tiers[len(tiers)-1].ID
}

// PlanMigrations demotes like LRU so the fast tier never wedges full.
func (p *TPFSLike) PlanMigrations(tiers []TierInfo, files []FileStat, now time.Duration) []Move {
	return DefaultLRU().PlanMigrations(tiers, files, now)
}

// HotCold classifies files by decayed access frequency: hot files climb to
// fast tiers, cold files sink, regardless of recency spikes.
type HotCold struct {
	// HotHeat is the heat above which a file is promoted (default 5).
	HotHeat float64
	// ColdHeat is the heat below which a file is demoted (default 0.5).
	ColdHeat float64

	hotK, coldK knob
}

// DefaultHotCold returns the default classification thresholds.
func DefaultHotCold() *HotCold { return &HotCold{HotHeat: 5, ColdHeat: 0.5} }

// Name identifies the policy.
func (p *HotCold) Name() string { return "hotcold" }

func (p *HotCold) hotHeat() float64  { return p.hotK.load(p.HotHeat) }
func (p *HotCold) coldHeat() float64 { return p.coldK.load(p.ColdHeat) }

// HotCold knob clamps: heat is a decayed access count, halved per policy
// round; double digits is already "very hot".
const (
	hcHeatMin = 0.05
	hcHeatMax = 64.0
)

// Params enumerates the HotCold knobs (Tunable).
func (p *HotCold) Params() []Param {
	return []Param{
		{Name: "hot_heat", Kind: KindScalar, Value: p.hotHeat(), Min: hcHeatMin, Max: hcHeatMax, Step: 0.5},
		{Name: "cold_heat", Kind: KindScalar, Value: p.coldHeat(), Min: hcHeatMin, Max: hcHeatMax, Step: 0.1},
	}
}

// SetParam installs an atomic knob override, clamped (Tunable).
func (p *HotCold) SetParam(name string, v float64) error {
	switch name {
	case "hot_heat":
		p.hotK.store(clampTo(v, hcHeatMin, hcHeatMax))
	case "cold_heat":
		p.coldK.store(clampTo(v, hcHeatMin, hcHeatMax))
	default:
		return fmt.Errorf("%w: hotcold %q", ErrUnknownParam, name)
	}
	return nil
}

// PlaceWrite starts everything on the fastest tier with room; heat sorts it
// out later.
func (p *HotCold) PlaceWrite(ctx WriteCtx, tiers []TierInfo) int {
	return fastestWithRoom(tiers, ctx.N, 0.9)
}

// PlanMigrations promotes hot files and demotes cold ones one tier at a
// time.
func (p *HotCold) PlanMigrations(tiers []TierInfo, files []FileStat, now time.Duration) []Move {
	var moves []Move
	tierIdx := make(map[int]int, len(tiers))
	for i, t := range tiers {
		tierIdx[t.ID] = i
	}
	hot, cold := p.hotHeat(), p.coldHeat()
	for _, f := range files {
		for _, tid := range f.Tiers {
			i := tierIdx[tid]
			switch {
			case f.Heat >= hot && i > 0:
				dst := tiers[i-1]
				if float64(dst.Used+f.Size) <= 0.9*float64(dst.Capacity) {
					moves = append(moves, Move{Path: f.Path, SrcTier: tid, DstTier: dst.ID, Off: 0, N: -1, Promote: true})
				}
			case f.Heat <= cold && i < len(tiers)-1:
				moves = append(moves, Move{Path: f.Path, SrcTier: tid, DstTier: tiers[i+1].ID, Off: 0, N: -1})
			}
		}
	}
	return moves
}

// Func adapts plain functions into a Policy — the "register a tiering rule"
// extensibility hook (the paper's eBPF analogue).
type Func struct {
	PolicyName string
	Place      func(ctx WriteCtx, tiers []TierInfo) int
	Plan       func(tiers []TierInfo, files []FileStat, now time.Duration) []Move
}

// Name identifies the policy.
func (p Func) Name() string {
	if p.PolicyName == "" {
		return "func"
	}
	return p.PolicyName
}

// PlaceWrite delegates to Place (fastest tier when nil).
func (p Func) PlaceWrite(ctx WriteCtx, tiers []TierInfo) int {
	if p.Place == nil {
		return tiers[0].ID
	}
	return p.Place(ctx, tiers)
}

// PlanMigrations delegates to Plan (no moves when nil).
func (p Func) PlanMigrations(tiers []TierInfo, files []FileStat, now time.Duration) []Move {
	if p.Plan == nil {
		return nil
	}
	return p.Plan(tiers, files, now)
}
