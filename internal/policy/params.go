package policy

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Typed, enumerable policy knobs. The built-in policies were configured by
// plain struct fields (`LRU{HighWatermark: 0.9}`) — fine for a policy you
// construct once, useless for a controller that wants to discover and
// adjust knobs while the Policy Runner is live. Params() enumerates a
// policy's knobs with their kind, current value, and hard safety clamps;
// SetParam adjusts one atomically, so a tuner may mutate a policy
// concurrently with PlaceWrite/PlanMigrations without a data race.
//
// The exported struct fields remain the *initial* configuration (struct
// literals everywhere keep working); a SetParam call installs an atomic
// override that the policy's accessors consult first. Clamps are enforced
// inside SetParam — a tuner can therefore never push a watermark or quota
// into a region that wedges migration.

// ParamKind says how a Param's float64 value should be interpreted.
type ParamKind int

const (
	// KindFraction is a dimensionless fill fraction in [0, 1].
	KindFraction ParamKind = iota
	// KindDuration is virtual nanoseconds.
	KindDuration
	// KindBytes is a byte count.
	KindBytes
	// KindScalar is a unitless magnitude (e.g. a heat threshold).
	KindScalar
)

// String names the kind for logs and muxsh output.
func (k ParamKind) String() string {
	switch k {
	case KindFraction:
		return "fraction"
	case KindDuration:
		return "duration_ns"
	case KindBytes:
		return "bytes"
	default:
		return "scalar"
	}
}

// Param describes one tunable knob: its current value and the hard range a
// tuner must stay inside. Step is the suggested probe increment for
// hill-climbing controllers — small enough to be safe, large enough to
// move the objective within a few rounds.
type Param struct {
	Name  string
	Kind  ParamKind
	Value float64
	Min   float64
	Max   float64
	Step  float64
}

// Tunable is implemented by policies whose knobs can be enumerated and
// adjusted online. SetParam must be safe to call concurrently with
// PlaceWrite and PlanMigrations, and must clamp v into the param's safe
// range rather than fail on an out-of-range value.
type Tunable interface {
	Params() []Param
	SetParam(name string, v float64) error
}

// ErrUnknownParam is returned by SetParam for a name the policy does not
// expose.
var ErrUnknownParam = fmt.Errorf("policy: unknown param")

// clampTo bounds v into [min, max].
func clampTo(v, min, max float64) float64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// knob is one atomic float64 override. The zero knob is unset: load falls
// back to the struct-field default. store publishes the bits before the
// set flag, so a concurrent load never observes the flag without the
// value.
type knob struct {
	bits atomic.Uint64
	set  atomic.Bool
}

func (k *knob) store(v float64) {
	k.bits.Store(math.Float64bits(v))
	k.set.Store(true)
}

func (k *knob) load(fallback float64) float64 {
	if !k.set.Load() {
		return fallback
	}
	return math.Float64frombits(k.bits.Load())
}
